#include "scale/synthetic_profile.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <vector>

#include "analysis/call_graph.h"
#include "kernel/kernel.h"
#include "support/rng.h"

namespace pibe::scale {

namespace {

/** One address-taken function: topo position, id, and arity. */
struct PoolEntry
{
    uint32_t pos = 0;
    ir::FuncId func = ir::kInvalidFunc;
};

/**
 * Per-site hotness: a minority of sites runs nearly every invocation,
 * the rest form a strongly cold-skewed tail (u^3 pushes most of the
 * mass toward zero).
 */
double
siteFraction(Rng& rng, const SyntheticProfileConfig& cfg)
{
    if (rng.chance(cfg.hot_site_fraction))
        return 0.5 + rng.uniform() * 0.5;
    const double u = rng.uniform();
    return u * u * u;
}

/**
 * Split `total` over `targets` with Zipf(alpha) weights, hottest
 * first. Rounding remainder goes to the hottest target so the site
 * total is conserved exactly.
 */
void
splitZipf(uint64_t total, const std::vector<ir::FuncId>& targets,
          double alpha, ir::SiteId site, profile::EdgeProfile& out,
          std::vector<uint64_t>& incoming)
{
    double sum = 0;
    for (size_t i = 0; i < targets.size(); ++i)
        sum += std::pow(static_cast<double>(i + 1), -alpha);
    uint64_t assigned = 0;
    std::vector<uint64_t> counts(targets.size(), 0);
    for (size_t i = 0; i < targets.size(); ++i) {
        const double w =
            std::pow(static_cast<double>(i + 1), -alpha) / sum;
        counts[i] = static_cast<uint64_t>(
            static_cast<double>(total) * w);
        assigned += counts[i];
    }
    counts[0] += total - assigned;
    for (size_t i = 0; i < targets.size(); ++i) {
        if (counts[i] == 0)
            continue;
        out.addIndirect(site, targets[i], counts[i]);
        incoming[targets[i]] += counts[i];
    }
}

/**
 * If `reg` at instruction `upto` (exclusive) in `bb` is last defined
 * by a kLoad, return that load's global; kInvalidFunc-style sentinel
 * (false) otherwise. Intra-block only — exactly the pattern the
 * generator (and the synthetic kernel's dispatchers) emit.
 */
bool
tableOfOperand(const ir::BasicBlock& bb, size_t upto, ir::Reg reg,
               ir::GlobalId* global)
{
    for (size_t j = upto; j-- > 0;) {
        const ir::Instruction& inst = bb.insts[j];
        if (!inst.hasDst() || inst.dst != reg)
            continue;
        if (inst.op != ir::Opcode::kLoad)
            return false;
        *global = inst.global;
        return true;
    }
    return false;
}

} // namespace

profile::EdgeProfile
synthesizeProfile(const ir::Module& module,
                  const SyntheticProfileConfig& config)
{
    const size_t n = module.numFunctions();
    profile::EdgeProfile out;
    if (n == 0)
        return out;

    // Top-down topological order of the direct call graph via Kahn's
    // algorithm with smallest-id tie-breaking. Ids ascend with call
    // depth in generated modules, so this keeps the dispatch root (and
    // every icall-only dispatcher) ahead of its potential targets,
    // which a DFS-based order does not guarantee for functions with no
    // direct callees. Cycles are broken deterministically at the
    // smallest unprocessed id (those back edges then carry no weight).
    analysis::CallGraph cg(module);
    std::vector<uint32_t> indeg(n, 0);
    for (ir::FuncId f = 0; f < n; ++f)
        for (ir::FuncId c : cg.callees(f))
            if (c < n && c != f)
                ++indeg[c];
    std::priority_queue<ir::FuncId, std::vector<ir::FuncId>,
                        std::greater<ir::FuncId>>
        ready;
    for (ir::FuncId f = 0; f < n; ++f)
        if (indeg[f] == 0)
            ready.push(f);
    std::vector<bool> done(n, false);
    std::vector<ir::FuncId> order;
    order.reserve(n);
    ir::FuncId scan = 0; // cycle-break cursor
    while (order.size() < n) {
        if (ready.empty()) {
            while (done[scan])
                ++scan;
            ready.push(scan);
        }
        const ir::FuncId f = ready.top();
        ready.pop();
        if (done[f])
            continue;
        done[f] = true;
        order.push_back(f);
        for (ir::FuncId c : cg.callees(f))
            if (c < n && !done[c] && indeg[c] > 0 && --indeg[c] == 0)
                ready.push(c);
    }
    std::vector<uint32_t> pos(n, 0);
    for (uint32_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;

    // Address-taken pool (fallback target source when an icall's
    // operand cannot be traced to an op-table load), grouped by arity
    // and sorted by topo position so "strictly later than the caller"
    // is a suffix.
    std::vector<bool> taken(n, false);
    for (const ir::Global& g : module.globals())
        for (int64_t v : g.init)
            if (ir::isFuncAddrValue(v) &&
                ir::funcAddrTarget(v) < n)
                taken[ir::funcAddrTarget(v)] = true;
    for (const ir::Function& f : module.functions())
        for (const ir::BasicBlock& bb : f.blocks)
            for (const ir::Instruction& inst : bb.insts) {
                if (inst.op == ir::Opcode::kFuncAddr &&
                    inst.callee < n)
                    taken[inst.callee] = true;
                if (inst.op == ir::Opcode::kConst &&
                    ir::isFuncAddrValue(inst.imm) &&
                    ir::funcAddrTarget(inst.imm) < n)
                    taken[ir::funcAddrTarget(inst.imm)] = true;
            }
    std::unordered_map<uint32_t, std::vector<PoolEntry>> pool_by_arity;
    for (ir::FuncId f = 0; f < n; ++f)
        if (taken[f])
            pool_by_arity[module.func(f).num_params].push_back(
                PoolEntry{pos[f], f});
    for (auto& [arity, pool] : pool_by_arity)
        std::sort(pool.begin(), pool.end(),
                  [](const PoolEntry& a, const PoolEntry& b) {
                      return a.pos < b.pos;
                  });

    // External (root) invocations by conventional name.
    std::vector<uint64_t> external(n, 0);
    std::vector<uint64_t> incoming(n, 0);
    const ir::FuncId init =
        module.findFunction(kernel::kKernelInitName);
    const ir::FuncId dispatch =
        module.findFunction(kernel::kSysDispatchName);
    const ir::FuncId main_fn = module.findFunction("main");
    if (init != ir::kInvalidFunc)
        external[init] = 1;
    if (dispatch != ir::kInvalidFunc)
        external[dispatch] = config.root_invocations;
    if (main_fn != ir::kInvalidFunc)
        external[main_fn] = config.root_invocations;

    Rng rng(config.seed);
    std::vector<ir::FuncId> targets;
    for (uint32_t i = 0; i < order.size(); ++i) {
        const ir::FuncId fid = order[i];
        const ir::Function& f = module.func(fid);
        const uint64_t inv = external[fid] + incoming[fid];
        if (inv)
            out.addInvocation(fid, inv);
        if (f.isDeclaration())
            continue;

        for (const ir::BasicBlock& bb : f.blocks) {
            for (size_t j = 0; j < bb.insts.size(); ++j) {
                const ir::Instruction& inst = bb.insts[j];
                if (inst.op == ir::Opcode::kCall) {
                    const uint64_t cnt = static_cast<uint64_t>(
                        static_cast<double>(inv) *
                        siteFraction(rng, config));
                    // Back edges (callee not strictly later in topo
                    // order) get zero weight to preserve conservation.
                    if (cnt == 0 || inst.callee >= n ||
                        pos[inst.callee] <= i)
                        continue;
                    out.addDirect(inst.site_id, cnt);
                    incoming[inst.callee] += cnt;
                } else if (inst.op == ir::Opcode::kICall) {
                    const uint64_t cnt = static_cast<uint64_t>(
                        static_cast<double>(inv) *
                        siteFraction(rng, config));
                    const uint64_t rot = rng.next();
                    if (cnt == 0)
                        continue;

                    targets.clear();
                    ir::GlobalId table = 0;
                    if (tableOfOperand(bb, j, inst.a, &table)) {
                        // Value-profile the actual op table: its
                        // function-pointer entries, deduplicated,
                        // arity-matched, strictly topo-later.
                        for (int64_t v : module.global(table).init) {
                            if (!ir::isFuncAddrValue(v))
                                continue;
                            const ir::FuncId t = ir::funcAddrTarget(v);
                            if (t >= n || pos[t] <= i)
                                continue;
                            if (module.func(t).num_params !=
                                inst.args.size())
                                continue;
                            if (std::find(targets.begin(),
                                          targets.end(),
                                          t) == targets.end())
                                targets.push_back(t);
                        }
                    }
                    if (targets.empty()) {
                        // Fallback: rotated window of the arity-
                        // matched address-taken pool.
                        auto it = pool_by_arity.find(
                            static_cast<uint32_t>(inst.args.size()));
                        if (it == pool_by_arity.end())
                            continue;
                        const auto& pool = it->second;
                        auto lo = std::lower_bound(
                            pool.begin(), pool.end(), i + 1,
                            [](const PoolEntry& e, uint32_t p) {
                                return e.pos < p;
                            });
                        const size_t k = static_cast<size_t>(
                            lo - pool.begin());
                        const size_t m = pool.size() - k;
                        if (m == 0)
                            continue;
                        const size_t start = rot % m;
                        const size_t take = std::min<size_t>(
                            config.max_targets_per_site, m);
                        for (size_t w = 0; w < take; ++w)
                            targets.push_back(
                                pool[k + (start + w) % m].func);
                    } else if (targets.size() >
                               config.max_targets_per_site) {
                        const size_t start = rot % targets.size();
                        std::rotate(targets.begin(),
                                    targets.begin() + start,
                                    targets.end());
                        targets.resize(config.max_targets_per_site);
                    }
                    splitZipf(cnt, targets, config.zipf_alpha,
                              inst.site_id, out, incoming);
                }
            }
        }
    }
    return out;
}

} // namespace pibe::scale
