#!/usr/bin/env bash
# Run the four job-graph table benchmarks serially (no cache) and then
# in parallel with a shared artifact cache, verify that the table
# output is byte-identical, and emit BENCH_tables.json with wall-clock
# and cache statistics per table. Also runs the interpreter microbench
# (decoded vs reference hot loop) and merges its result into the JSON
# so the engine's perf trajectory is tracked per PR.
#
# Finally boots a `pibe serve` daemon, replays a concurrent loadgen
# mix against it, and merges its BENCH_serve.json (p50/p99 latency,
# throughput, cold vs warm cache) into the output as well.
#
# It also runs `pibe scalebench` (Linux-scale generated modules
# through the parallel pipeline, serial-vs-parallel digest identity,
# build-time and peak-RSS curves) and merges its BENCH_scale.json under
# the same provenance stamp.
#
# It also runs `pibe surface` (interprocedural target-set analysis +
# residual-attack-surface report) over a freshly built paper kernel and
# merges its BENCH_surface.json under the same provenance stamp.
#
# Usage: tools/run_all_tables.sh [BUILD_DIR] [OUT_JSON] [INTERP_JSON] [SERVE_JSON] [SCALE_JSON] [SURFACE_JSON]
#   BUILD_DIR   cmake build tree holding the bench binaries (default: build)
#   OUT_JSON    output metrics file (default: BENCH_tables.json)
#   INTERP_JSON interpreter microbench output (default: BENCH_interpreter.json)
#   SERVE_JSON  serve loadgen output (default: BENCH_serve.json)
#   SCALE_JSON  scalebench output (default: BENCH_scale.json)
#   SURFACE_JSON surface report output (default: BENCH_surface.json)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_tables.json}"
INTERP_JSON="${3:-BENCH_interpreter.json}"
SERVE_JSON="${4:-BENCH_serve.json}"
SCALE_JSON="${5:-BENCH_scale.json}"
SURFACE_JSON="${6:-BENCH_surface.json}"
JOBS="$(nproc)"
TABLES=(table5_all_defenses table6_per_defense table3_retpolines
        table7_macrobenchmarks)

for bin in bench/table5_all_defenses bench/table6_per_defense \
           bench/table3_retpolines bench/table7_macrobenchmarks \
           tools/pibe; do
    if [[ ! -x "$BUILD_DIR/$bin" ]]; then
        echo "error: $BUILD_DIR/$bin not found;" \
             "build with: cmake -B $BUILD_DIR -S . &&" \
             "cmake --build $BUILD_DIR -j" >&2
        exit 1
    fi
done

WORK="$(mktemp -d /tmp/pibe_tables.XXXXXX)"
CACHE_DIR="$WORK/cache"
trap 'rm -rf "$WORK"' EXIT

now_ms() { date +%s%3N; }

echo "== serial reference run (--jobs 1 --no-cache) =="
serial_t0=$(now_ms)
for t in "${TABLES[@]}"; do
    t0=$(now_ms)
    "$BUILD_DIR/bench/$t" --jobs 1 --no-cache > "$WORK/$t.serial.txt"
    echo "  $t: $(( $(now_ms) - t0 )) ms"
done
serial_ms=$(( $(now_ms) - serial_t0 ))

echo "== parallel run (--jobs $JOBS, shared cache) =="
parallel_t0=$(now_ms)
for t in "${TABLES[@]}"; do
    t0=$(now_ms)
    "$BUILD_DIR/bench/$t" --jobs "$JOBS" --cache-dir "$CACHE_DIR" \
        --metrics-json "$WORK/$t.metrics.json" > "$WORK/$t.parallel.txt"
    echo "  $t: $(( $(now_ms) - t0 )) ms"
done
parallel_ms=$(( $(now_ms) - parallel_t0 ))

echo "== verifying byte-identical table output =="
for t in "${TABLES[@]}"; do
    if ! cmp -s "$WORK/$t.serial.txt" "$WORK/$t.parallel.txt"; then
        echo "FAIL: $t output differs between serial and parallel:" >&2
        diff "$WORK/$t.serial.txt" "$WORK/$t.parallel.txt" >&2 || true
        exit 1
    fi
    echo "  $t: identical"
done

speedup=$(awk -v s="$serial_ms" -v p="$parallel_ms" \
    'BEGIN { printf "%.2f", (p > 0) ? s / p : 0 }')

echo "== interpreter microbench (decoded vs reference) =="
"$BUILD_DIR/bench/microbench_interpreter" \
    --interpreter-json "$INTERP_JSON"

echo "== serve daemon loadgen (cold + warm cache) =="
SERVE_SOCK="$WORK/serve.sock"
"$BUILD_DIR/tools/pibe" serve --socket "$SERVE_SOCK" --jobs "$JOBS" \
    --drivers 64 --profile-iters 30 --cache-dir "$WORK/serve-cache" \
    > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    "$BUILD_DIR/tools/pibe" client --socket "$SERVE_SOCK" --op ping \
        > /dev/null 2>&1 && break
    sleep 0.2
done
"$BUILD_DIR/tools/pibe" loadgen --socket "$SERVE_SOCK" \
    --requests 200 --clients 8 --out "$SERVE_JSON"
"$BUILD_DIR/tools/pibe" client --socket "$SERVE_SOCK" \
    --op shutdown > /dev/null
wait "$SERVE_PID"

echo "== scalebench (generated modules, serial vs parallel) =="
"$BUILD_DIR/tools/pibe" scalebench --jobs "$JOBS" --stage-profile \
    --out "$SCALE_JSON"

echo "== parallel check sandwich timing (pibe check --jobs --timing) =="
"$BUILD_DIR/tools/pibe" genkernel --insts 100000 --seed 42 \
    -o "$WORK/check-scale.pir" --profile "$WORK/check-scale.prof" \
    > /dev/null
"$BUILD_DIR/tools/pibe" check -m "$WORK/check-scale.pir" \
    -p "$WORK/check-scale.prof" --jobs "$JOBS" --timing --json \
    > "$WORK/check-timing.json"
# Graft the checker timing breakdown into the scale artifact so one
# file carries the whole pipeline's perf curves.
python3 - "$SCALE_JSON" "$WORK/check-timing.json" <<'EOF'
import json, sys
scale_path, timing_path = sys.argv[1], sys.argv[2]
with open(scale_path) as f:
    doc = json.load(f)
with open(timing_path) as f:
    doc["check_timing"] = json.load(f).get("timing", {})
with open(scale_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF

echo "== residual-attack-surface report (pibe surface) =="
"$BUILD_DIR/tools/pibe" kernel -o "$WORK/surface-kernel.pir" --drivers 64
"$BUILD_DIR/tools/pibe" profile -m "$WORK/surface-kernel.pir" \
    -o "$WORK/surface-prof.txt" --iters 10
"$BUILD_DIR/tools/pibe" surface -m "$WORK/surface-kernel.pir" \
    -p "$WORK/surface-prof.txt" --json "$SURFACE_JSON" --fail-on warn

# Provenance stamp: every BENCH_*.json records where its numbers came
# from, so checked-in baselines are auditable. The dispatch mode is
# read back from the interpreter artifact (the binary knows which
# engine it actually ran).
GIT_SHA=$(git -C "$(dirname "$0")/.." rev-parse --short HEAD \
    2>/dev/null || echo unknown)
CPU_MODEL=$(awk -F': ' '/model name/ { print $2; exit }' \
    /proc/cpuinfo 2>/dev/null || echo unknown)
CXX_ID=$("${CXX:-c++}" --version 2>/dev/null | head -1 || echo unknown)
DISPATCH=$(python3 -c 'import json, sys
print(json.load(open(sys.argv[1]))["provenance"]["dispatch_mode"])' \
    "$INTERP_JSON" 2>/dev/null || echo unknown)
STAMP_UTC=$(date -u +%Y-%m-%dT%H:%M:%SZ)

{
    echo "{"
    echo "  \"provenance\": {"
    echo "    \"git_sha\": \"$GIT_SHA\","
    echo "    \"compiler\": \"$CXX_ID\","
    echo "    \"cpu\": \"$CPU_MODEL\","
    echo "    \"dispatch_mode\": \"$DISPATCH\","
    echo "    \"timestamp_utc\": \"$STAMP_UTC\""
    echo "  },"
    echo "  \"jobs\": $JOBS,"
    echo "  \"serial_wall_s\": $(awk -v ms="$serial_ms" \
        'BEGIN { printf "%.3f", ms / 1000 }'),"
    echo "  \"parallel_wall_s\": $(awk -v ms="$parallel_ms" \
        'BEGIN { printf "%.3f", ms / 1000 }'),"
    echo "  \"speedup\": $speedup,"
    echo "  \"output_identical\": true,"
    echo "  \"interpreter\": $(sed 's/^/  /' "$INTERP_JSON" \
        | sed '1s/^  //'),"
    echo "  \"serve\": $(cat "$SERVE_JSON"),"
    echo "  \"scale\": $(cat "$SCALE_JSON"),"
    echo "  \"surface\": $(cat "$SURFACE_JSON"),"
    echo "  \"tables\": ["
    sep=""
    for t in "${TABLES[@]}"; do
        printf '%s    %s' "$sep" "$(cat "$WORK/$t.metrics.json")"
        sep=$',\n'
    done
    printf '\n  ]\n}\n'
} > "$OUT_JSON"

echo "== done =="
echo "serial:   ${serial_ms} ms"
echo "parallel: ${parallel_ms} ms (speedup ${speedup}x)"
echo "metrics:  $OUT_JSON (serve: $SERVE_JSON, scale: $SCALE_JSON," \
     "surface: $SURFACE_JSON)"
