/**
 * @file
 * pibe — command-line driver for the PIBE toolkit.
 *
 * Mirrors the paper's build workflow (LLVM bitcode + opt passes) over
 * PIR text files:
 *
 *   pibe kernel   -o kernel.pir [--drivers N] [--seed S]
 *   pibe profile  -m kernel.pir -o prof.txt [--workload W] [--iters N]
 *   pibe optimize -m kernel.pir -p prof.txt -o image.pir
 *                 [--icp-budget F] [--inline-budget F] [--lax]
 *                 [--inliner pibe|default|none]
 *                 [--defense none|retpolines|ret-retpolines|lvi|all|
 *                            jumpswitches] [--report]
 *   pibe measure  -m image.pir [--baseline base.pir] [--test NAME]
 *                 [--jobs N] [--cache-dir DIR] [--decode-stats]
 *                 [--decode-stats-json FILE]
 *   pibe attack   -m image.pir [--kind spectre-v2|ret2spec|lvi]
 *   pibe stats    -m file.pir
 *   pibe check    -m file.pir [-p prof.txt] [--defense NAME]
 *                 [--checks verify,lint,coverage,profile,targets]
 *                 [--json] [--fail-on note|warn|error] [--roots a,b,c]
 *                 [--allow-func f,g] [--allow-site 1,2]
 *                 [--jobs N] [--timing]
 *   pibe surface  -m file.pir [-p prof.txt] [--json FILE]
 *                 [--max-targets N] [--fail-on note|warn|error]
 *                 [--roots a,b,c]
 *   pibe serve    [--socket PATH] [--tcp PORT] [--jobs N]
 *                 [--cache-dir DIR] [--cache-budget BYTES]
 *                 [--drivers N] [--seed S] [--profile-iters N]
 *                 [--max-inflight N] [--defense NAME]
 *                 [--fail-on note|warn|error] [--auth-token T]
 *   pibe loadgen  [--socket PATH] [--tcp PORT] [--requests N]
 *                 [--clients N] [--seed S] [--variants N]
 *                 [--verify N] [--out FILE] [--auth-token T]
 *   pibe client   --op NAME [--params JSON] [--socket PATH]
 *                 [--tcp PORT] [--save-text FILE] [--auth-token T]
 *
 * --auth-token defaults to $PIBE_SERVE_TOKEN; when the daemon has a
 * token, TCP connections must authenticate before any other op.
 *   pibe genkernel -o big.pir [--insts N] [--seed S]
 *                 [--profile prof.txt] [--depth N] [--fanout F]
 *                 [--icalls-per-kinst F] [--ops-per-table N]
 *                 [--entry-points N] [--mix core,fs,net,drivers]
 *   pibe scalebench [--sizes N,N,...] [--seed S] [--jobs N]
 *                 [--out BENCH_scale.json] [--stage-profile]
 *                 [--serial-below N]
 *   pibe selftest            (end-to-end smoke of all subcommands)
 */
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/checks.h"
#include "check/target_sets.h"
#include "harden/harden.h"
#include "ir/parser.h"
#include "pibe/engine.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "kernel/kernel.h"
#include "pibe/experiment.h"
#include "pibe/pipeline.h"
#include "profile/serialize.h"
#include "runtime/artifact_cache.h"
#include "runtime/job_graph.h"
#include "runtime/thread_pool.h"
#include "scale/parallel_pipeline.h"
#include "scale/scale_builder.h"
#include "scale/synthetic_profile.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "support/stats.h"
#include "support/table.h"
#include "uarch/simulator.h"
#include "uarch/speculation.h"

namespace pibe::cli {
namespace {

/** Minimal argv option scanner. */
class Args
{
  public:
    Args(int argc, char** argv)
    {
        for (int i = 0; i < argc; ++i)
            args_.emplace_back(argv[i]);
    }

    std::string
    get(const std::string& flag, const std::string& fallback = "")
    {
        const std::string eq = flag + "=";
        for (size_t i = 0; i < args_.size(); ++i) {
            if (args_[i] == flag && i + 1 < args_.size()) {
                used_[i] = used_[i + 1] = true;
                return args_[i + 1];
            }
            if (args_[i].rfind(eq, 0) == 0) {
                used_[i] = true;
                return args_[i].substr(eq.size());
            }
        }
        return fallback;
    }

    bool
    has(const std::string& flag)
    {
        for (size_t i = 0; i < args_.size(); ++i) {
            if (args_[i] == flag) {
                used_[i] = true;
                return true;
            }
        }
        return false;
    }

  private:
    std::vector<std::string> args_;
    std::map<size_t, bool> used_;
};

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        PIBE_FATAL("cannot open ", path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        PIBE_FATAL("cannot write ", path);
    out << contents;
}

/**
 * The one verification choke point for module input: every subcommand
 * that consumes PIR text funnels through here (or through check::
 * runChecks, which subsumes the verifier).
 */
ir::Module
parseAndVerify(const std::string& text, const std::string& context)
{
    ir::Module m = ir::parseModule(text);
    ir::verifyOrDie(m, context);
    return m;
}

ir::Module
loadModule(const std::string& path)
{
    return parseAndVerify(readFile(path), path);
}

/** Split a comma-separated list; empty input yields an empty list. */
std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(s);
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** PIBE_SERVE_TOKEN, the fallback for every --auth-token flag. */
std::string
envAuthToken()
{
    const char* token = std::getenv("PIBE_SERVE_TOKEN");
    return token ? token : "";
}

harden::DefenseConfig
defenseByName(const std::string& name)
{
    // The library's registry is the one source of truth; the CLI only
    // adds the fatal-on-typo policy.
    if (std::optional<harden::DefenseConfig> defense =
            harden::defenseByName(name))
        return *defense;
    PIBE_FATAL("unknown defense '", name, "'");
}

std::vector<std::unique_ptr<workload::Workload>>
workloadByName(const std::string& name)
{
    std::vector<std::unique_ptr<workload::Workload>> suite;
    if (name == "lmbench") {
        suite = workload::makeLmbenchSuite();
    } else if (name == "apache") {
        suite.push_back(workload::makeApacheWorkload());
    } else if (name == "nginx") {
        suite.push_back(workload::makeNginxWorkload());
    } else if (name == "dbench") {
        suite.push_back(workload::makeDbenchWorkload());
    } else {
        suite.push_back(workload::makeLmbenchTest(name));
    }
    return suite;
}

int
cmdKernel(Args& args)
{
    kernel::KernelConfig cfg;
    cfg.num_drivers = static_cast<uint32_t>(
        std::stoul(args.get("--drivers", "448")));
    cfg.seed = std::stoull(args.get("--seed", "42"));
    kernel::KernelImage k = kernel::buildKernel(cfg);
    std::string out = args.get("-o", "kernel.pir");
    writeFile(out, ir::printModule(k.module));
    std::printf("wrote %s (%zu functions)\n", out.c_str(),
                k.module.numFunctions());
    return 0;
}

int
cmdProfile(Args& args)
{
    ir::Module m = loadModule(args.get("-m", "kernel.pir"));
    kernel::KernelInfo info = kernel::kernelInfoFromModule(m);
    uint32_t iters = static_cast<uint32_t>(
        std::stoul(args.get("--iters", "120")));
    profile::EdgeProfile profile;
    if (args.has("--train")) {
        // The canonical scaled training profile — the exact profile
        // the experiment engine and the serve daemon build from, so a
        // CLI run is byte-comparable with their cached artifacts.
        profile = core::collectLmbenchProfile(m, info, iters);
    } else {
        auto suite = workloadByName(args.get("--workload", "lmbench"));
        profile = core::collectProfile(m, info, suite, iters);
    }
    std::string out = args.get("-o", "profile.txt");
    writeFile(out, profile::serializeProfile(m, profile));
    std::printf("wrote %s (%zu direct sites, %zu indirect sites)\n",
                out.c_str(), profile.numDirectSites(),
                profile.numIndirectSites());
    return 0;
}

int
cmdOptimize(Args& args)
{
    ir::Module m = loadModule(args.get("-m", "kernel.pir"));
    auto profile =
        profile::liftProfile(m, readFile(args.get("-p", "profile.txt")));

    core::OptConfig opt;
    opt.icp_budget = std::stod(args.get("--icp-budget", "0.99999"));
    opt.inline_budget =
        std::stod(args.get("--inline-budget", "0.999999"));
    opt.lax_heuristics = args.has("--lax");
    std::string inliner = args.get("--inliner", "pibe");
    if (inliner == "pibe")
        opt.inliner = core::InlinerKind::kPibe;
    else if (inliner == "default")
        opt.inliner = core::InlinerKind::kDefaultLlvm;
    else if (inliner == "none")
        opt.inliner = core::InlinerKind::kNone;
    else
        PIBE_FATAL("unknown inliner '", inliner, "'");

    harden::DefenseConfig defense =
        defenseByName(args.get("--defense", "all"));

    core::BuildReport report;
    ir::Module image =
        core::buildImage(m, profile, opt, defense, &report);
    std::string out = args.get("-o", "image.pir");
    writeFile(out, ir::printModule(image));
    std::printf("wrote %s\n", out.c_str());
    if (args.has("--report")) {
        std::printf("  promoted: %u targets at %u sites\n",
                    report.icp.promoted_targets,
                    report.icp.promoted_sites);
        std::printf("  inlined:  %u sites (%llu weight)\n",
                    report.inlining.inlined_sites,
                    static_cast<unsigned long long>(
                        report.inlining.inlined_weight));
        std::printf("  coverage: %u protected icalls, %u vulnerable "
                    "icalls, %u vulnerable ijumps\n",
                    report.coverage.protected_icalls,
                    report.coverage.vulnerable_icalls,
                    report.coverage.vulnerable_ijumps);
        std::printf("  size:     %llu -> %llu bytes\n",
                    static_cast<unsigned long long>(
                        report.baseline_image_size),
                    static_cast<unsigned long long>(report.image_size));
    }
    return 0;
}

int
cmdMeasure(Args& args)
{
    const std::string image_path = args.get("-m", "image.pir");
    const std::string image_text = readFile(image_path);
    ir::Module m = parseAndVerify(image_text, image_path);
    kernel::KernelInfo info = kernel::kernelInfoFromModule(m);
    std::string test = args.get("--test", "all");
    std::string baseline_path = args.get("--baseline");
    unsigned jobs = static_cast<unsigned>(
        std::stoul(args.get("--jobs", "1")));
    std::string cache_dir = args.get("--cache-dir");
    const std::string decode_stats_json =
        args.get("--decode-stats-json");
    const bool decode_stats =
        args.has("--decode-stats") || !decode_stats_json.empty();

    using Clock = std::chrono::steady_clock;
    const Clock::time_point decode_t0 = Clock::now();
    const auto decoded = std::make_shared<const uarch::DecodedModule>(m);
    const double decode_ms =
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  decode_t0)
            .count();

    runtime::ArtifactCache cache;
    if (!cache_dir.empty())
        cache.setDiskDir(cache_dir);

    std::vector<std::string> tests;
    if (test == "all") {
        for (const auto& wl : workload::makeLmbenchSuite())
            tests.push_back(wl->name());
    } else {
        tests.push_back(test);
    }

    std::string base_text;
    std::unique_ptr<ir::Module> base_mod;
    kernel::KernelInfo base_info;
    std::shared_ptr<const uarch::DecodedModule> base_decoded;
    if (!baseline_path.empty()) {
        base_text = readFile(baseline_path);
        base_mod = std::make_unique<ir::Module>(
            parseAndVerify(base_text, baseline_path));
        base_info = kernel::kernelInfoFromModule(*base_mod);
        base_decoded =
            std::make_shared<const uarch::DecodedModule>(*base_mod);
    }

    // One job per (image, test), each writing its own pre-sized slot;
    // results are position-addressed so --jobs N output is identical
    // to serial.
    const core::MeasureConfig config;
    std::vector<double> lat(tests.size());
    std::vector<double> base_lat(tests.size());
    std::vector<uint64_t> run_insts(tests.size());
    std::vector<double> run_ms(tests.size());
    std::vector<std::array<uint64_t, uarch::kNumFusedFamilies>>
        run_fused(tests.size());
    runtime::JobGraph graph;
    for (size_t i = 0; i < tests.size(); ++i) {
        graph.add("measure:" + tests[i],
                  [&, i](const runtime::JobContext&) {
                      const Clock::time_point t0 = Clock::now();
                      const core::Measurement meas =
                          core::measureWorkloadCached(
                              image_text, decoded, info, tests[i],
                              config, &cache);
                      run_ms[i] = std::chrono::duration<double,
                                                        std::milli>(
                                      Clock::now() - t0)
                                      .count();
                      lat[i] = meas.latency_us;
                      run_insts[i] = meas.stats.instructions;
                      run_fused[i] = meas.stats.fused;
                  });
        if (base_mod) {
            graph.add("baseline:" + tests[i],
                      [&, i](const runtime::JobContext&) {
                          base_lat[i] =
                              core::measureWorkloadCached(
                                  base_text, base_decoded, base_info,
                                  tests[i], config, &cache)
                                  .latency_us;
                      });
        }
    }
    runtime::ThreadPool pool(std::max(1u, jobs));
    graph.run(pool);
    pool.shutdown();

    Table t(baseline_path.empty()
                ? std::vector<std::string>{"Test", "latency (us)"}
                : std::vector<std::string>{"Test", "latency (us)",
                                           "overhead"});
    std::vector<double> overheads;
    for (size_t i = 0; i < tests.size(); ++i) {
        std::vector<std::string> row{tests[i], fixedStr(lat[i], 3)};
        if (base_mod) {
            double o = overhead(lat[i], base_lat[i]);
            overheads.push_back(o);
            row.push_back(percent(o));
        }
        t.addRow(row);
    }
    if (overheads.size() > 1) {
        t.addSeparator();
        t.addRow({"Geometric Mean", "-",
                  percent(geomeanOverhead(overheads))});
    }
    std::printf("%s", t.render().c_str());

    if (decode_stats) {
        // Host-side interpreter throughput: simulated instructions per
        // host second of each measurement run (warmup + measured
        // phases). A cache hit replays stored counters without
        // interpreting, which shows up as an absurd rate — run with a
        // cold cache for meaningful numbers.
        Table dt({"Test", "sim insts", "run (ms)", "MIPS"});
        for (size_t i = 0; i < tests.size(); ++i) {
            const double mips =
                run_ms[i] > 0 ? static_cast<double>(run_insts[i]) /
                                    (run_ms[i] * 1e3)
                              : 0;
            dt.addRow({tests[i], std::to_string(run_insts[i]),
                       fixedStr(run_ms[i], 2), fixedStr(mips, 1)});
        }
        dt.addSeparator();
        dt.addRow({"decode time (ms)", "-", fixedStr(decode_ms, 2),
                   "-"});
        dt.addRow({"decoded stream",
                   std::to_string(decoded->decodedBytes()) + " bytes",
                   "-", "-"});
        dt.addRow({"decoded insts",
                   std::to_string(decoded->code().size()), "-", "-"});
        std::printf("\ndecode stats:\n%s", dt.render().c_str());

        // The evidence the superinstruction set was selected from:
        // static opcode and intra-block digram histograms, plus how
        // often each fusion family fired statically (rewritten sites)
        // and dynamically (superinstruction executions summed over
        // the measured workloads).
        const uarch::DecodeStats& ds = decoded->decodeStats();
        Table ot({"opcode", "static count"});
        for (size_t o = 0; o < uarch::kNumIrOpcodes; ++o) {
            if (ds.op_count[o] == 0)
                continue;
            ot.addRow({ir::opcodeName(static_cast<ir::Opcode>(o)),
                       std::to_string(ds.op_count[o])});
        }
        std::printf("\nopcode histogram:\n%s", ot.render().c_str());

        struct Digram
        {
            uint64_t n;
            size_t a, b;
        };
        std::vector<Digram> digrams;
        for (size_t a = 0; a < uarch::kNumIrOpcodes; ++a)
            for (size_t b = 0; b < uarch::kNumIrOpcodes; ++b)
                if (ds.digram[a][b] > 0)
                    digrams.push_back({ds.digram[a][b], a, b});
        std::sort(digrams.begin(), digrams.end(),
                  [](const Digram& x, const Digram& y) {
                      return x.n > y.n;
                  });
        Table gt({"digram", "static count"});
        for (size_t i = 0; i < digrams.size() && i < 12; ++i) {
            gt.addRow(
                {std::string(ir::opcodeName(
                     static_cast<ir::Opcode>(digrams[i].a))) +
                     "+" +
                     ir::opcodeName(
                         static_cast<ir::Opcode>(digrams[i].b)),
                 std::to_string(digrams[i].n)});
        }
        std::printf("\ntop intra-block digrams:\n%s",
                    gt.render().c_str());

        std::array<uint64_t, uarch::kNumFusedFamilies> fused_execs{};
        for (const auto& per_test : run_fused)
            for (size_t f = 0; f < uarch::kNumFusedFamilies; ++f)
                fused_execs[f] += per_test[f];
        Table ft({"fused family", "static sites", "dynamic execs"});
        for (size_t f = 0; f < uarch::kNumFusedFamilies; ++f) {
            ft.addRow({uarch::fusedFamilyName(
                           static_cast<uarch::FusedFamily>(f)),
                       std::to_string(ds.fused_sites[f]),
                       std::to_string(fused_execs[f])});
        }
        ft.addSeparator();
        ft.addRow({"total pairs", std::to_string(ds.fused_pairs),
                   "-"});
        std::printf("\nsuperinstruction fusion:\n%s",
                    ft.render().c_str());

        if (!decode_stats_json.empty()) {
            std::FILE* out = std::fopen(decode_stats_json.c_str(),
                                        "w");
            if (!out)
                PIBE_FATAL("cannot write ", decode_stats_json);
            std::fprintf(out, "{\n");
            std::fprintf(out, "  \"decode_ms\": %.3f,\n", decode_ms);
            std::fprintf(out, "  \"decoded_insts\": %zu,\n",
                         decoded->code().size());
            std::fprintf(out, "  \"decoded_bytes\": %zu,\n",
                         decoded->decodedBytes());
            std::fprintf(out, "  \"opcodes\": {");
            bool first = true;
            for (size_t o = 0; o < uarch::kNumIrOpcodes; ++o) {
                if (ds.op_count[o] == 0)
                    continue;
                std::fprintf(
                    out, "%s\n    \"%s\": %llu", first ? "" : ",",
                    ir::opcodeName(static_cast<ir::Opcode>(o)),
                    static_cast<unsigned long long>(ds.op_count[o]));
                first = false;
            }
            std::fprintf(out, "\n  },\n");
            std::fprintf(out, "  \"digrams\": {");
            first = true;
            for (const Digram& d : digrams) {
                std::fprintf(
                    out, "%s\n    \"%s+%s\": %llu", first ? "" : ",",
                    ir::opcodeName(static_cast<ir::Opcode>(d.a)),
                    ir::opcodeName(static_cast<ir::Opcode>(d.b)),
                    static_cast<unsigned long long>(d.n));
                first = false;
            }
            std::fprintf(out, "\n  },\n");
            std::fprintf(out, "  \"fused_families\": [\n");
            for (size_t f = 0; f < uarch::kNumFusedFamilies; ++f) {
                std::fprintf(
                    out,
                    "    {\"family\": \"%s\", \"static_sites\": "
                    "%llu, \"dynamic_execs\": %llu}%s\n",
                    uarch::fusedFamilyName(
                        static_cast<uarch::FusedFamily>(f)),
                    static_cast<unsigned long long>(
                        ds.fused_sites[f]),
                    static_cast<unsigned long long>(fused_execs[f]),
                    f + 1 < uarch::kNumFusedFamilies ? "," : "");
            }
            std::fprintf(out, "  ],\n");
            std::fprintf(out, "  \"fused_static_pairs\": %llu\n",
                         static_cast<unsigned long long>(
                             ds.fused_pairs));
            std::fprintf(out, "}\n");
            std::fclose(out);
            std::printf("decode stats json -> %s\n",
                        decode_stats_json.c_str());
        }
    }
    return 0;
}

int
cmdAttack(Args& args)
{
    ir::Module m = loadModule(args.get("-m", "image.pir"));
    kernel::KernelInfo info = kernel::kernelInfoFromModule(m);
    std::string kind_name = args.get("--kind", "all");
    std::vector<uarch::AttackKind> kinds;
    if (kind_name == "all") {
        kinds = {uarch::AttackKind::kSpectreV2,
                 uarch::AttackKind::kRet2spec, uarch::AttackKind::kLvi};
    } else if (kind_name == "spectre-v2") {
        kinds = {uarch::AttackKind::kSpectreV2};
    } else if (kind_name == "ret2spec") {
        kinds = {uarch::AttackKind::kRet2spec};
    } else if (kind_name == "lvi") {
        kinds = {uarch::AttackKind::kLvi};
    } else {
        PIBE_FATAL("unknown attack kind '", kind_name, "'");
    }
    for (uarch::AttackKind kind : kinds) {
        uarch::Simulator sim(m);
        sim.setTimingEnabled(false);
        ir::FuncId gadget = m.findFunction("drv0_h0");
        if (gadget == ir::kInvalidFunc)
            gadget = info.kernel_init;
        uarch::TransientAttacker attacker(
            kind, sim.layout().funcBase(gadget));
        workload::KernelHandle handle(sim, info);
        handle.boot();
        auto wl = workload::makeLmbenchTest("read");
        wl->setup(handle);
        sim.setObserver(&attacker);
        for (uint64_t i = 0; i < 300; ++i)
            wl->iteration(handle, i);
        std::printf("%-12s %llu gadget hits over %llu events -> %s\n",
                    uarch::attackKindName(kind),
                    static_cast<unsigned long long>(
                        attacker.gadgetHits()),
                    static_cast<unsigned long long>(
                        attacker.eventsObserved()),
                    attacker.gadgetHits() == 0 ? "blocked"
                                               : "VULNERABLE");
    }
    return 0;
}

int
cmdStats(Args& args)
{
    ir::Module m = loadModule(args.get("-m", "image.pir"));
    uint32_t icalls = 0, rets = 0, switches = 0, asm_sites = 0,
             hardened = 0;
    size_t insts = 0;
    for (const auto& f : m.functions()) {
        insts += f.instructionCount();
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                switch (inst.op) {
                  case ir::Opcode::kICall:
                    ++icalls;
                    asm_sites += inst.is_asm;
                    hardened +=
                        inst.fwd_scheme != ir::FwdScheme::kNone;
                    break;
                  case ir::Opcode::kRet:
                    ++rets;
                    hardened +=
                        inst.ret_scheme != ir::RetScheme::kNone;
                    break;
                  case ir::Opcode::kSwitch:
                    ++switches;
                    asm_sites += inst.is_asm;
                    break;
                  default:
                    break;
                }
            }
        }
    }
    analysis::CodeLayout layout(m);
    std::printf("functions:        %zu\n", m.numFunctions());
    std::printf("instructions:     %zu\n", insts);
    std::printf("indirect calls:   %u\n", icalls);
    std::printf("returns:          %u\n", rets);
    std::printf("switches:         %u\n", switches);
    std::printf("asm sites:        %u\n", asm_sites);
    std::printf("hardened sites:   %u\n", hardened);
    std::printf("image size:       %llu bytes\n",
                static_cast<unsigned long long>(layout.imageSize()));
    return 0;
}

int
cmdCheck(Args& args)
{
    const std::string path = args.get("-m", "kernel.pir");
    // Deliberately no parseAndVerify: the suite reports verifier
    // findings as diagnostics instead of dying on the first one.
    ir::Module m = ir::parseModule(readFile(path));

    check::CheckOptions opts;
    // Feasible-target validation is on by default: it needs no extra
    // inputs and is the translation-validation layer for ICP guard
    // chains and op-table entries.
    opts.targets = true;
    profile::EdgeProfile prof;
    const std::string prof_path = args.get("-p");
    if (!prof_path.empty()) {
        prof = profile::liftProfile(m, readFile(prof_path));
        opts.profile = &prof;
        opts.profile_flow = true;
    }
    const std::string defense_name = args.get("--defense");
    if (!defense_name.empty()) {
        opts.defense = defenseByName(defense_name);
        opts.coverage = true;
    }
    const std::string checks = args.get("--checks");
    if (!checks.empty()) {
        opts.verify = opts.lint = opts.coverage = opts.profile_flow =
            opts.targets = false;
        for (const std::string& c : splitList(checks)) {
            if (c == "verify")
                opts.verify = true;
            else if (c == "lint")
                opts.lint = true;
            else if (c == "coverage")
                opts.coverage = true;
            else if (c == "profile")
                opts.profile_flow = true;
            else if (c == "targets")
                opts.targets = true;
            else
                PIBE_FATAL("unknown check group '", c,
                           "' (expected verify, lint, coverage, "
                           "profile, targets)");
        }
        if (opts.profile_flow && !opts.profile)
            PIBE_FATAL("--checks profile requires -p <profile>");
        if (opts.coverage && defense_name.empty())
            PIBE_FATAL("--checks coverage requires --defense <name>");
    }
    opts.roots = splitList(args.get("--roots"));
    opts.allowed_funcs = splitList(args.get("--allow-func"));
    for (const std::string& s : splitList(args.get("--allow-site")))
        opts.allowed_sites.push_back(
            static_cast<ir::SiteId>(std::stoul(s)));

    const std::string fail_on = args.get("--fail-on", "error");
    std::optional<check::Severity> threshold =
        check::severityFromName(fail_on);
    if (!threshold)
        PIBE_FATAL("unknown --fail-on '", fail_on,
                   "' (expected note, warn, or error)");

    const size_t jobs =
        std::max<size_t>(1, std::stoul(args.get("--jobs", "1")));

    // The shared policy gate: CLI, in-process engine callers, and the
    // serve daemon all decide pass/fail through runChecksWithPolicy,
    // so --fail-on semantics cannot drift between entry points. With
    // --jobs > 1 the per-function groups fan out over a thread pool;
    // the sorted report is byte-identical at every jobs count.
    check::AnalysisManager am(m);
    check::CheckOutcome outcome;
    outcome.fail_on = *threshold;
    if (jobs > 1) {
        runtime::ThreadPool pool(jobs);
        outcome.report =
            check::runChecksParallel(m, opts, pool, 64, &am);
        outcome.passed = outcome.report.ok(*threshold);
    } else {
        outcome = check::runChecksWithPolicy(m, opts, *threshold, &am);
    }
    // Canonical emission order: checkers append group-by-group, so
    // without this the order would leak scheduling details into the
    // JSON consumed by CI diffs.
    check::sortDiagnostics(outcome.report.diags);
    const check::CheckReport& report = outcome.report;

    // --timing: per-checker wall times plus the target-set solver
    // counters, as one JSON object (merged into BENCH_scale.json by
    // tools/run_all_tables.sh when requested).
    std::string timing_json;
    if (args.has("--timing")) {
        std::ostringstream t;
        t << "{\"jobs\":" << jobs << ",\"groups\":[";
        for (size_t i = 0; i < report.group_ms.size(); ++i) {
            if (i)
                t << ",";
            t << "{\"name\":\"" << report.group_ms[i].first
              << "\",\"ms\":" << std::fixed << std::setprecision(2)
              << report.group_ms[i].second << "}";
        }
        t << "]";
        if (opts.targets) {
            const check::SolverStats& ss =
                am.targetSets(opts.roots).solverStats();
            t << ",\"solver\":{\"mode\":\""
              << (ss.mode == check::SolverMode::kFast ? "fast"
                                                      : "reference")
              << "\",\"nodes\":" << ss.nodes
              << ",\"static_edges\":" << ss.static_edges
              << ",\"dynamic_edges\":" << ss.dynamic_edges
              << ",\"scc_collapsed\":" << ss.scc_collapsed
              << ",\"lcd_collapsed\":" << ss.lcd_collapsed
              << ",\"interned_sets\":" << ss.interned_sets
              << ",\"union_memo_hits\":" << ss.union_memo_hits
              << ",\"pops\":" << ss.pops << ",\"solve_ms\":"
              << std::fixed << std::setprecision(2) << ss.solve_ms
              << "}";
        }
        t << "}";
        timing_json = t.str();
    }

    if (args.has("--json")) {
        std::printf("{\"module\":\"%s\",\"errors\":%zu,"
                    "\"warnings\":%zu,\"notes\":%zu,"
                    "\"passed\":%s,%s\"diagnostics\":%s}\n",
                    path.c_str(), report.errors(), report.warnings(),
                    report.notes(), outcome.passed ? "true" : "false",
                    timing_json.empty()
                        ? ""
                        : ("\"timing\":" + timing_json + ",").c_str(),
                    check::renderJson(report.diags).c_str());
    } else {
        std::printf("%s", check::renderText(report.diags).c_str());
        if (!timing_json.empty())
            std::printf("timing: %s\n", timing_json.c_str());
        std::printf("%s: %zu error(s), %zu warning(s), %zu note(s)\n",
                    path.c_str(), report.errors(), report.warnings(),
                    report.notes());
    }
    return outcome.passed ? 0 : 1;
}

/**
 * `pibe surface` — run the interprocedural target-set analysis and
 * report the residual attack surface per defense configuration: how
 * many indirect call sites each forward-edge scheme leaves reachable,
 * the feasible-set size distribution, and the AIR-style score. The
 * structural verifiers and target-set checkers gate the report, so a
 * module that fails translation validation exits nonzero.
 */
int
cmdSurface(Args& args)
{
    const std::string path = args.get("-m", "kernel.pir");
    ir::Module m = ir::parseModule(readFile(path));

    check::CheckOptions opts;
    opts.lint = false; // style findings are noise for an audit report
    opts.targets = true;
    profile::EdgeProfile prof;
    const std::string prof_path = args.get("-p");
    if (!prof_path.empty()) {
        // With a profile, coverage.targets additionally proves every
        // observed target lies inside its site's static set.
        prof = profile::liftProfile(m, readFile(prof_path));
        opts.profile = &prof;
    }
    opts.roots = splitList(args.get("--roots"));

    const std::string fail_on = args.get("--fail-on", "error");
    std::optional<check::Severity> threshold =
        check::severityFromName(fail_on);
    if (!threshold)
        PIBE_FATAL("unknown --fail-on '", fail_on,
                   "' (expected note, warn, or error)");
    const uint32_t max_targets = static_cast<uint32_t>(
        std::stoul(args.get("--max-targets", "8")));

    // Share one AnalysisManager between the checkers and the report so
    // the points-to solve runs once.
    check::AnalysisManager am(m);
    check::CheckOutcome outcome =
        check::runChecksWithPolicy(m, opts, *threshold, &am);
    check::sortDiagnostics(outcome.report.diags);
    if (!outcome.report.diags.empty())
        std::printf("%s",
                    check::renderText(outcome.report.diags).c_str());

    check::SurfaceReport rep =
        check::buildSurfaceReport(am.targetSets(opts.roots), max_targets);
    rep.module_name = path;
    std::printf("%s", check::renderSurfaceText(rep).c_str());

    const std::string json_path = args.get("--json");
    if (!json_path.empty()) {
        writeFile(json_path, check::renderSurfaceJson(rep));
        std::printf("wrote %s\n", json_path.c_str());
    }
    return outcome.passed ? 0 : 1;
}

int
cmdGenkernel(Args& args)
{
    scale::ScaleConfig cfg;
    cfg.target_insts = std::stoull(args.get("--insts", "100000"));
    cfg.seed = std::stoull(args.get("--seed", "42"));
    cfg.depth =
        static_cast<uint32_t>(std::stoul(args.get("--depth", "10")));
    cfg.fanout = std::stod(args.get("--fanout", "2.5"));
    cfg.icalls_per_kinst =
        std::stod(args.get("--icalls-per-kinst", "7.0"));
    cfg.ops_per_table = static_cast<uint32_t>(
        std::stoul(args.get("--ops-per-table", "7")));
    cfg.num_entry_points = static_cast<uint32_t>(
        std::stoul(args.get("--entry-points", "32")));
    const std::string mix = args.get("--mix");
    if (!mix.empty()) {
        std::vector<std::string> parts = splitList(mix);
        if (parts.size() != 4)
            PIBE_FATAL("--mix wants four fractions "
                       "(core,fs,net,drivers), got '",
                       mix, "'");
        cfg.frac_core = std::stod(parts[0]);
        cfg.frac_fs = std::stod(parts[1]);
        cfg.frac_net = std::stod(parts[2]);
        cfg.frac_drivers = std::stod(parts[3]);
    }

    scale::ScaleStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    ir::Module m = scale::buildScaleModule(cfg, &stats);
    const auto t1 = std::chrono::steady_clock::now();

    const std::string out = args.get("-o", "scale_kernel.pir");
    writeFile(out, ir::printModule(m));

    const std::string prof_path = args.get("--profile");
    if (!prof_path.empty()) {
        scale::SyntheticProfileConfig pcfg;
        pcfg.seed = cfg.seed;
        pcfg.root_invocations = std::stoull(
            args.get("--root-invocations", "1048576"));
        profile::EdgeProfile prof = scale::synthesizeProfile(m, pcfg);
        writeFile(prof_path, profile::serializeProfile(m, prof));
    }

    const double gen_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("wrote %s (%.0f ms)\n", out.c_str(), gen_ms);
    std::printf("functions:      %llu\n",
                static_cast<unsigned long long>(stats.num_functions));
    std::printf("instructions:   %llu\n",
                static_cast<unsigned long long>(stats.num_insts));
    std::printf("call sites:     %llu\n",
                static_cast<unsigned long long>(stats.call_sites));
    std::printf("icall sites:    %llu (%llu asm)\n",
                static_cast<unsigned long long>(stats.icall_sites),
                static_cast<unsigned long long>(stats.asm_icall_sites));
    std::printf("return sites:   %llu\n",
                static_cast<unsigned long long>(stats.ret_sites));
    std::printf("switches:       %llu\n",
                static_cast<unsigned long long>(stats.switch_sites));
    std::printf("op tables:      %llu (%llu globals)\n",
                static_cast<unsigned long long>(stats.num_tables),
                static_cast<unsigned long long>(stats.num_globals));
    if (!prof_path.empty())
        std::printf("profile:        %s\n", prof_path.c_str());
    return 0;
}

/** One StageTiming as a JSON object (for --stage-profile rows). */
std::string
stageTimingJson(const scale::StageTiming& t)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"plan_ms\":%.1f,\"icp_ms\":%.1f,"
                  "\"inline_ms\":%.1f,\"harden_ms\":%.1f,"
                  "\"check_ms\":%.1f,\"total_ms\":%.1f,"
                  "\"cpu_ms\":%.1f}",
                  t.plan_ms, t.icp_ms, t.inline_ms, t.harden_ms,
                  t.check_ms, t.total_ms, t.cpu_ms);
    return buf;
}

/**
 * One fork-isolated scalebench measurement: generate a module of
 * `insts` instructions, synthesize its profile, build the hardened
 * image serially and with `jobs` workers, and write one JSON object
 * with timings, digests, and audit counters to `fd`. Runs in the
 * child so the parent can read peak RSS from wait4(). The worker pool
 * is created once, before any timed region, so the parallel
 * measurement reflects scheduling cost, not thread start-up.
 */
void
runScalebenchChild(uint64_t insts, uint64_t seed, size_t jobs,
                   uint64_t serial_below, bool stage_profile, int fd)
{
    using Clock = std::chrono::steady_clock;
    auto ms = [](Clock::time_point a, Clock::time_point b) {
        return std::chrono::duration<double, std::milli>(b - a)
            .count();
    };

    scale::ScaleConfig cfg;
    cfg.target_insts = insts;
    cfg.seed = seed;
    scale::ScaleStats stats;
    const Clock::time_point t0 = Clock::now();
    ir::Module m = scale::buildScaleModule(cfg, &stats);
    const Clock::time_point t1 = Clock::now();

    scale::SyntheticProfileConfig pcfg;
    pcfg.seed = seed;
    profile::EdgeProfile prof = scale::synthesizeProfile(m, pcfg);
    const Clock::time_point t2 = Clock::now();

    // Warm the pool before the first timed build.
    runtime::ThreadPool pool(std::max<size_t>(2, jobs));

    scale::ParallelPipelineConfig pc;
    pc.defenses = harden::DefenseConfig::all();
    pc.serial_below_insts = serial_below;
    pc.jobs = 1;
    scale::ParallelPipelineReport serial_rep;
    std::string serial_digest;
    const Clock::time_point t3 = Clock::now();
    {
        ir::Module image =
            scale::buildImageParallel(m, prof, pc, &serial_rep);
        serial_digest = scale::moduleDigest(image);
    } // image freed here: peak RSS reflects one in-flight image
    const Clock::time_point t4 = Clock::now();

    pc.jobs = jobs;
    pc.pool = &pool;
    scale::ParallelPipelineReport par_rep;
    std::string par_digest;
    const Clock::time_point t5 = Clock::now();
    {
        ir::Module image =
            scale::buildImageParallel(m, prof, pc, &par_rep);
        par_digest = scale::moduleDigest(image);
    }
    const Clock::time_point t6 = Clock::now();

    const double serial_ms = ms(t3, t4);
    const double par_ms = ms(t5, t6);
    std::string stages;
    if (stage_profile) {
        stages = "\"stages\":{\"serial\":" +
                 stageTimingJson(serial_rep.timing) +
                 ",\"parallel\":" + stageTimingJson(par_rep.timing) +
                 "},";
    }
    dprintf(
        fd,
        "{\"target_insts\":%llu,\"insts\":%llu,\"functions\":%llu,"
        "\"icall_sites\":%llu,"
        "\"gen_ms\":%.1f,\"profile_ms\":%.1f,"
        "\"serial_build_ms\":%.1f,\"parallel_build_ms\":%.1f,"
        "\"speedup\":%.2f,"
        "\"jobs_used\":%llu,\"serial_bypass\":%s,"
        "\"quiet_funcs\":%llu,\"participant_funcs\":%llu,"
        "\"icp_ms\":%.1f,\"inline_ms\":%.1f,\"harden_ms\":%.1f,"
        "\"check_ms\":%.1f,%s\"inline_rounds\":%u,"
        "\"analyses_computed\":%llu,\"analyses_reused\":%llu,"
        "\"check_errors\":%llu,"
        "\"baseline_image_size\":%llu,\"image_size\":%llu,"
        "\"digest\":\"%s\",\"digests_match\":%s}",
        static_cast<unsigned long long>(insts),
        static_cast<unsigned long long>(stats.num_insts),
        static_cast<unsigned long long>(stats.num_functions),
        static_cast<unsigned long long>(stats.icall_sites),
        ms(t0, t1), ms(t1, t2), serial_ms, par_ms,
        par_ms > 0 ? serial_ms / par_ms : 0.0,
        static_cast<unsigned long long>(par_rep.jobs_used),
        par_rep.serial_bypass ? "true" : "false",
        static_cast<unsigned long long>(par_rep.quiet_funcs),
        static_cast<unsigned long long>(par_rep.participant_funcs),
        serial_rep.timing.icp_ms, serial_rep.timing.inline_ms,
        serial_rep.timing.harden_ms, serial_rep.timing.check_ms,
        stages.c_str(), par_rep.inline_rounds,
        static_cast<unsigned long long>(
            serial_rep.analyses_computed),
        static_cast<unsigned long long>(serial_rep.analyses_reused),
        static_cast<unsigned long long>(
            serial_rep.checks.errors()),
        static_cast<unsigned long long>(
            serial_rep.baseline_image_size),
        static_cast<unsigned long long>(serial_rep.image_size),
        serial_digest.c_str(),
        serial_digest == par_digest ? "true" : "false");
}

int
cmdScalebench(Args& args)
{
    const std::string out = args.get("--out", "BENCH_scale.json");
    const uint64_t seed = std::stoull(args.get("--seed", "42"));
    const bool stage_profile = args.has("--stage-profile");
    const uint64_t serial_below =
        std::stoull(args.get("--serial-below", "4096"));
    size_t jobs = std::stoul(args.get("--jobs", "0"));
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs < 2)
            jobs = 2; // exercise the parallel path even on one core
    }
    std::vector<uint64_t> sizes;
    for (const std::string& s : splitList(
             args.get("--sizes", "10000,32000,100000,320000,1000000")))
        sizes.push_back(std::stoull(s));
    if (sizes.size() < 2)
        PIBE_FATAL("scalebench needs at least two --sizes");

    struct Row
    {
        serve::Json json;
        long maxrss_kb = 0;
    };
    std::vector<Row> rows;
    bool all_match = true;
    for (uint64_t n : sizes) {
        int fds[2];
        if (pipe(fds) != 0)
            PIBE_FATAL("pipe() failed");
        const pid_t pid = fork();
        if (pid < 0)
            PIBE_FATAL("fork() failed");
        if (pid == 0) {
            close(fds[0]);
            runScalebenchChild(n, seed, jobs, serial_below,
                               stage_profile, fds[1]);
            close(fds[1]);
            _exit(0);
        }
        close(fds[1]);
        std::string text;
        char buf[4096];
        ssize_t got;
        while ((got = read(fds[0], buf, sizeof buf)) > 0)
            text.append(buf, static_cast<size_t>(got));
        close(fds[0]);
        int status = 0;
        struct rusage ru = {};
        if (wait4(pid, &status, 0, &ru) != pid ||
            !WIFEXITED(status) || WEXITSTATUS(status) != 0)
            PIBE_FATAL("scalebench child for ", n, " insts failed");
        std::optional<serve::Json> json = serve::Json::parse(text);
        if (!json || !json->isObject())
            PIBE_FATAL("scalebench child emitted bad JSON: ", text);

        Row row;
        row.json = *json;
        row.maxrss_kb = ru.ru_maxrss; // Linux reports KiB
        all_match = all_match && row.json["digests_match"].asBool();
        std::printf("  %8llu insts: gen %6.0f ms, build %7.0f ms "
                    "(x%.2f with %zu jobs), rss %ld MiB, errors %lld, "
                    "digests %s\n",
                    static_cast<unsigned long long>(n),
                    row.json["gen_ms"].asDouble(),
                    row.json["serial_build_ms"].asDouble(),
                    row.json["speedup"].asDouble(), jobs,
                    row.maxrss_kb / 1024,
                    static_cast<long long>(
                        row.json["check_errors"].asInt()),
                    row.json["digests_match"].asBool() ? "match"
                                                       : "DIFFER");
        rows.push_back(std::move(row));
    }

    // Scaling exponents between consecutive sizes: e in t ~ n^e. An
    // exponent meaningfully above 1 flags a superlinear blow-up.
    double max_time_exp = 0;
    double max_rss_exp = 0;
    std::vector<double> time_exps(rows.size(), 0);
    std::vector<double> rss_exps(rows.size(), 0);
    for (size_t i = 1; i < rows.size(); ++i) {
        const double n_ratio =
            rows[i].json["insts"].asDouble() /
            std::max(1.0, rows[i - 1].json["insts"].asDouble());
        if (n_ratio <= 1)
            continue;
        const double t_ratio =
            rows[i].json["serial_build_ms"].asDouble() /
            std::max(1.0,
                     rows[i - 1].json["serial_build_ms"].asDouble());
        const double r_ratio =
            static_cast<double>(rows[i].maxrss_kb) /
            std::max(1.0, static_cast<double>(rows[i - 1].maxrss_kb));
        time_exps[i] = std::log(std::max(t_ratio, 1e-9)) /
                       std::log(n_ratio);
        rss_exps[i] = std::log(std::max(r_ratio, 1e-9)) /
                      std::log(n_ratio);
        max_time_exp = std::max(max_time_exp, time_exps[i]);
        max_rss_exp = std::max(max_rss_exp, rss_exps[i]);
    }

    // Parallel-over-serial crossover: the smallest size whose
    // parallel build beat the serial one without the bypass engaging.
    uint64_t crossover = 0;
    for (const Row& row : rows) {
        if (!row.json["serial_bypass"].asBool() &&
            row.json["speedup"].asDouble() > 1.0) {
            crossover =
                static_cast<uint64_t>(row.json["insts"].asDouble());
            break;
        }
    }

    std::FILE* f = std::fopen(out.c_str(), "w");
    if (!f)
        PIBE_FATAL("cannot write ", out);
    std::fprintf(f,
                 "{\n  \"bench\": \"scale\",\n  \"seed\": %llu,\n"
                 "  \"jobs\": %zu,\n  \"nproc\": %u,\n"
                 "  \"serial_below_insts\": %llu,\n"
                 "  \"crossover_insts\": %llu,\n"
                 "  \"all_digests_match\": %s,\n"
                 "  \"max_time_scaling_exponent\": %.2f,\n"
                 "  \"max_rss_scaling_exponent\": %.2f,\n"
                 "  \"sizes\": [\n",
                 static_cast<unsigned long long>(seed), jobs,
                 std::thread::hardware_concurrency(),
                 static_cast<unsigned long long>(serial_below),
                 static_cast<unsigned long long>(crossover),
                 all_match ? "true" : "false", max_time_exp,
                 max_rss_exp);
    for (size_t i = 0; i < rows.size(); ++i) {
        serve::Json j = rows[i].json;
        std::string dumped = j.dump();
        // Graft the parent-side measurements into the child's object:
        // strip the closing brace and append.
        dumped.pop_back();
        std::fprintf(f,
                     "    %s,\"maxrss_kb\":%ld,"
                     "\"time_scaling_exponent\":%.2f,"
                     "\"rss_scaling_exponent\":%.2f}%s\n",
                     dumped.c_str(), rows[i].maxrss_kb, time_exps[i],
                     rss_exps[i], i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);

    std::printf("wrote %s (max time exponent %.2f, max rss exponent "
                "%.2f, digests %s)\n",
                out.c_str(), max_time_exp, max_rss_exp,
                all_match ? "all match" : "MISMATCH");
    return all_match ? 0 : 1;
}

/** Signal target of `pibe serve` (one daemon per process). */
serve::Server* g_server = nullptr;

void
handleStopSignal(int)
{
    if (g_server)
        g_server->requestStopFromSignal(); // atomic store only
}

int
cmdServe(Args& args)
{
    serve::ServeOptions opts;
    opts.socket_path = args.get("--socket", "/tmp/pibe-serve.sock");
    const std::string tcp = args.get("--tcp");
    if (!tcp.empty())
        opts.tcp_port = std::stoi(tcp);
    opts.jobs = static_cast<unsigned>(
        std::stoul(args.get("--jobs", "0")));
    opts.cache_dir = args.get("--cache-dir");
    opts.cache_budget = std::stoull(args.get("--cache-budget", "0"));
    opts.kernel.num_drivers = static_cast<uint32_t>(
        std::stoul(args.get("--drivers", "448")));
    opts.kernel.seed = std::stoull(args.get("--seed", "42"));
    opts.profile_base_iters = static_cast<uint32_t>(
        std::stoul(args.get("--profile-iters", "120")));
    opts.max_inflight = static_cast<unsigned>(
        std::stoul(args.get("--max-inflight", "0")));
    opts.default_defense = args.get("--defense", "all");
    opts.fail_on = args.get("--fail-on", "error");
    opts.auth_token = args.get("--auth-token", envAuthToken());

    serve::Server server(std::move(opts));
    if (!server.start())
        return 1;
    g_server = &server;
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
    server.wait();
    g_server = nullptr;
    return 0;
}

int
cmdLoadgen(Args& args)
{
    serve::LoadgenOptions opts;
    opts.socket_path = args.get("--socket", "/tmp/pibe-serve.sock");
    const std::string tcp = args.get("--tcp");
    if (!tcp.empty()) {
        opts.tcp_port = std::stoi(tcp);
        opts.socket_path = args.get("--socket");
    }
    opts.requests = static_cast<uint32_t>(
        std::stoul(args.get("--requests", "500")));
    opts.clients = std::max(1u, static_cast<uint32_t>(std::stoul(
                                    args.get("--clients", "8"))));
    opts.seed = std::stoull(args.get("--seed", "1"));
    opts.image_variants = static_cast<uint32_t>(
        std::stoul(args.get("--variants", "2")));
    opts.verify =
        static_cast<uint32_t>(std::stoul(args.get("--verify", "0")));
    opts.out_path = args.get("--out", "BENCH_serve.json");
    opts.auth_token = args.get("--auth-token", envAuthToken());
    return serve::runLoadgen(opts);
}

int
cmdClient(Args& args)
{
    const std::string op = args.get("--op", "ping");
    serve::Json params = serve::Json::object();
    const std::string params_text = args.get("--params");
    if (!params_text.empty()) {
        std::optional<serve::Json> parsed =
            serve::Json::parse(params_text);
        if (!parsed || !parsed->isObject())
            PIBE_FATAL("--params is not a JSON object: ", params_text);
        params = *parsed;
    }

    serve::Client client;
    const std::string tcp = args.get("--tcp");
    bool connected = false;
    if (!tcp.empty())
        connected = client.connectTcp(
            static_cast<uint16_t>(std::stoul(tcp)));
    else
        connected = client.connectUnix(
            args.get("--socket", "/tmp/pibe-serve.sock"));
    if (!connected)
        PIBE_FATAL("cannot connect to the serve daemon");

    const std::string token =
        args.get("--auth-token", envAuthToken());
    if (!token.empty()) {
        std::string auth_error;
        if (!client.authenticate(token, &auth_error))
            PIBE_FATAL("authentication failed: ", auth_error);
    }

    std::optional<serve::Json> response = client.call(op, params);
    if (!response)
        PIBE_FATAL("transport failure talking to the daemon");
    const std::string save = args.get("--save-text");
    if (!save.empty()) {
        // Pull a large text artifact (e.g. optimize --want_text) out
        // of the response instead of dumping it to the terminal.
        writeFile(save, (*response)["result"]["text"].asString());
        std::printf("wrote %s\n", save.c_str());
    } else {
        std::printf("%s\n", response->dump().c_str());
    }
    return (*response)["ok"].asBool(false) ? 0 : 1;
}

int
cmdSelftest()
{
    // The full workflow in a temp directory.
    const std::string dir = "/tmp/pibe_cli_selftest";
    std::string mkdir = "mkdir -p " + dir;
    if (std::system(mkdir.c_str()) != 0)
        PIBE_FATAL("cannot create ", dir);

    kernel::KernelConfig cfg;
    cfg.num_drivers = 8;
    kernel::KernelImage k = kernel::buildKernel(cfg);
    writeFile(dir + "/kernel.pir", ir::printModule(k.module));

    ir::Module m = loadModule(dir + "/kernel.pir");
    kernel::KernelInfo info = kernel::kernelInfoFromModule(m);
    auto suite = workload::makeLmbenchSuite();
    auto profile = core::collectProfile(m, info, suite, 25);
    writeFile(dir + "/profile.txt",
              profile::serializeProfile(m, profile));

    auto lifted =
        profile::liftProfile(m, readFile(dir + "/profile.txt"));
    core::BuildReport report;
    ir::Module image = core::buildImage(
        m, lifted, core::OptConfig::icpAndInline(0.999),
        harden::DefenseConfig::all(), &report);
    writeFile(dir + "/image.pir", ir::printModule(image));

    ir::Module reloaded = loadModule(dir + "/image.pir");
    kernel::KernelInfo rinfo = kernel::kernelInfoFromModule(reloaded);
    uarch::Simulator sim(reloaded);
    workload::KernelHandle handle(sim, rinfo);
    handle.boot();
    int64_t pid = handle.syscall(kernel::sysno::kNull);
    if (pid != 1)
        PIBE_FATAL("selftest: reloaded kernel misbehaves (pid=", pid,
                   ")");
    if (report.inlining.inlined_sites == 0)
        PIBE_FATAL("selftest: no inlining happened");

    // Audit the artifacts the workflow just produced: flow
    // conservation of the fresh profile against the input kernel, and
    // hardening coverage of the shipped image.
    check::CheckOptions popts;
    popts.profile_flow = true;
    popts.profile = &lifted;
    check::CheckReport pr = check::runChecks(m, popts);
    if (pr.errors() != 0)
        PIBE_FATAL("selftest: profile audit found ", pr.errors(),
                   " error(s): ", pr.diags.front().render());
    check::CheckOptions copts;
    copts.coverage = true;
    copts.defense = harden::DefenseConfig::all();
    check::CheckReport cr = check::runChecks(reloaded, copts);
    if (cr.errors() != 0)
        PIBE_FATAL("selftest: image audit found ", cr.errors(),
                   " error(s): ", cr.diags.front().render());

    std::printf("selftest OK (%s)\n", dir.c_str());
    return 0;
}

int
run(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: pibe "
                     "<kernel|profile|optimize|measure|attack|stats|"
                     "check|surface|genkernel|scalebench|serve|loadgen|"
                     "client|selftest> [options]\n");
        return 2;
    }
    const std::string cmd = argv[1];
    Args args(argc - 2, argv + 2);
    if (cmd == "kernel")
        return cmdKernel(args);
    if (cmd == "profile")
        return cmdProfile(args);
    if (cmd == "optimize")
        return cmdOptimize(args);
    if (cmd == "measure")
        return cmdMeasure(args);
    if (cmd == "attack")
        return cmdAttack(args);
    if (cmd == "stats")
        return cmdStats(args);
    if (cmd == "check")
        return cmdCheck(args);
    if (cmd == "surface")
        return cmdSurface(args);
    if (cmd == "genkernel")
        return cmdGenkernel(args);
    if (cmd == "scalebench")
        return cmdScalebench(args);
    if (cmd == "serve")
        return cmdServe(args);
    if (cmd == "loadgen")
        return cmdLoadgen(args);
    if (cmd == "client")
        return cmdClient(args);
    if (cmd == "selftest")
        return cmdSelftest();
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
}

} // namespace
} // namespace pibe::cli

int
main(int argc, char** argv)
{
    return pibe::cli::run(argc, argv);
}
