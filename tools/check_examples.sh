#!/usr/bin/env bash
# Static-analysis gate: run `pibe check` over every shipped example
# module and over freshly built production kernel images (one per
# defense configuration), failing on any error-severity finding.
#
# Usage: tools/check_examples.sh [path/to/pibe] [--drivers N] [--iters N]
set -euo pipefail

PIBE=${1:-build/tools/pibe}
shift $(( $# > 0 ? 1 : 0 )) || true
DRIVERS=64
ITERS=5
while [ $# -gt 0 ]; do
    case "$1" in
        --drivers) DRIVERS=$2; shift 2 ;;
        --iters)   ITERS=$2;   shift 2 ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
done

if [ ! -x "$PIBE" ]; then
    echo "error: pibe binary not found at '$PIBE'" >&2
    exit 2
fi

ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== checking shipped example modules"
for f in "$ROOT"/examples/pir/*.pir; do
    echo "-- $f"
    "$PIBE" check -m "$f" --fail-on=error
done

echo "== building kernel (drivers=$DRIVERS) and profile (iters=$ITERS)"
"$PIBE" kernel -o "$WORK/kernel.pir" --drivers "$DRIVERS"
"$PIBE" profile -m "$WORK/kernel.pir" -o "$WORK/prof.txt" --iters "$ITERS"

echo "-- input kernel: verify + lint + profile flow conservation"
"$PIBE" check -m "$WORK/kernel.pir" -p "$WORK/prof.txt" --fail-on=error

for defense in retpolines lvi all; do
    echo "== production image: --defense $defense"
    "$PIBE" optimize -m "$WORK/kernel.pir" -p "$WORK/prof.txt" \
        -o "$WORK/image-$defense.pir" --defense "$defense"
    "$PIBE" check -m "$WORK/image-$defense.pir" \
        --defense "$defense" --fail-on=error
done

echo "== all checks passed"
