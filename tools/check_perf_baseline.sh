#!/usr/bin/env bash
# Perf smoke gate: fail if the freshly measured interpreter throughput
# regresses more than 10% below the checked-in baseline.
#
#   tools/check_perf_baseline.sh NEW.json [BASELINE.json]
#
# Both files are BENCH_interpreter.json artifacts (written by
# `microbench_interpreter --interpreter-json`); the gated metric is
# decoded_minstr_per_s, the peak-window throughput of the threaded
# fused engine. BASELINE defaults to the BENCH_interpreter.json
# committed at the repo root.
#
# The 10% margin absorbs run-to-run noise on shared CI runners (the
# benchmark itself already reports a peak window, which removes most
# scheduler-induced variance); a real dispatch-loop regression shows
# up far larger than that.
set -euo pipefail

NEW="${1:?usage: check_perf_baseline.sh NEW.json [BASELINE.json]}"
BASELINE="${2:-$(dirname "$0")/../BENCH_interpreter.json}"
MARGIN="${PIBE_PERF_MARGIN:-0.90}"

extract() {
    python3 - "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    print(json.load(f)["decoded_minstr_per_s"])
EOF
}

new_rate=$(extract "$NEW")
base_rate=$(extract "$BASELINE")

python3 - "$new_rate" "$base_rate" "$MARGIN" <<'EOF'
import sys
new, base, margin = map(float, sys.argv[1:4])
floor = base * margin
print(f"decoded_minstr_per_s: measured {new:.1f}, "
      f"baseline {base:.1f}, floor {floor:.1f} "
      f"({margin:.0%} of baseline)")
if new < floor:
    print("FAIL: interpreter throughput regressed "
          f"{(1 - new / base):.1%} below the checked-in baseline",
          file=sys.stderr)
    sys.exit(1)
print("OK")
EOF
