#!/usr/bin/env bash
# Perf smoke gates: fail if a freshly measured benchmark regresses
# more than 10% below/above the checked-in baseline.
#
#   tools/check_perf_baseline.sh NEW.json [BASELINE.json]
#   tools/check_perf_baseline.sh --scale NEW_SCALE.json [BASELINE.json]
#
# Default mode gates BENCH_interpreter.json artifacts (written by
# `microbench_interpreter --interpreter-json`) on
# decoded_minstr_per_s, the peak-window throughput of the threaded
# fused engine. BASELINE defaults to the BENCH_interpreter.json
# committed at the repo root.
#
# --scale gates BENCH_scale.json artifacts (written by
# `pibe scalebench`): the serial pipeline build time of the
# 10^5-instruction module must not exceed the baseline's by more than
# the margin (PIBE_SCALE_MARGIN, default 1.5 — wall-clock on a shared
# or cross-machine runner is far noisier than the interpreter's
# peak-window throughput, so this is a coarse guard against
# order-of-magnitude blow-ups; tighten the margin locally when
# comparing against a baseline regenerated on the same idle box), and
# every serial-vs-parallel digest comparison must have matched.
#
# The 10% margin absorbs run-to-run noise on shared CI runners (the
# interpreter benchmark already reports a peak window, which removes
# most scheduler-induced variance); a real regression shows up far
# larger than that.
set -euo pipefail

MODE=interpreter
if [ "${1:-}" = "--scale" ]; then
    MODE=scale
    shift
fi

NEW="${1:?usage: check_perf_baseline.sh [--scale] NEW.json [BASELINE.json]}"

if [ "$MODE" = "scale" ]; then
    BASELINE="${2:-$(dirname "$0")/../BENCH_scale.json}"
    MARGIN="${PIBE_SCALE_MARGIN:-1.5}"
    python3 - "$NEW" "$BASELINE" "$MARGIN" <<'EOF'
import json, sys

new_path, base_path, margin = sys.argv[1], sys.argv[2], float(sys.argv[3])

def load(path):
    with open(path) as f:
        return json.load(f)

def row_at(doc, insts):
    for row in doc["sizes"]:
        if row.get("target_insts") == insts:
            return row
    sys.exit(f"FAIL: no {insts}-inst row in scalebench artifact")

new_doc, base_doc = load(new_path), load(base_path)

if not new_doc.get("all_digests_match", False):
    print("FAIL: serial vs parallel image digests diverged",
          file=sys.stderr)
    sys.exit(1)

GATE_INSTS = 100000
new_ms = row_at(new_doc, GATE_INSTS)["serial_build_ms"]
base_ms = row_at(base_doc, GATE_INSTS)["serial_build_ms"]
ceiling = base_ms * margin
print(f"serial_build_ms @ 10^5: measured {new_ms:.0f}, "
      f"baseline {base_ms:.0f}, ceiling {ceiling:.0f} "
      f"({margin:.0%} of baseline)")
if new_ms > ceiling:
    print("FAIL: pipeline build time regressed "
          f"{new_ms / base_ms - 1:.1%} above the checked-in baseline",
          file=sys.stderr)
    sys.exit(1)
print("OK")
EOF
    exit 0
fi

BASELINE="${2:-$(dirname "$0")/../BENCH_interpreter.json}"
MARGIN="${PIBE_PERF_MARGIN:-0.90}"

extract() {
    python3 - "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    print(json.load(f)["decoded_minstr_per_s"])
EOF
}

new_rate=$(extract "$NEW")
base_rate=$(extract "$BASELINE")

python3 - "$new_rate" "$base_rate" "$MARGIN" <<'EOF'
import sys
new, base, margin = map(float, sys.argv[1:4])
floor = base * margin
print(f"decoded_minstr_per_s: measured {new:.1f}, "
      f"baseline {base:.1f}, floor {floor:.1f} "
      f"({margin:.0%} of baseline)")
if new < floor:
    print("FAIL: interpreter throughput regressed "
          f"{(1 - new / base):.1%} below the checked-in baseline",
          file=sys.stderr)
    sys.exit(1)
print("OK")
EOF
