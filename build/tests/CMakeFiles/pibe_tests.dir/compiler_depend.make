# Empty compiler generated dependencies file for pibe_tests.
# This may be replaced when dependencies are built.
