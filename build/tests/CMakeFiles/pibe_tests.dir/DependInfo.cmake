
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/pibe_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_cleanup.cc" "tests/CMakeFiles/pibe_tests.dir/test_cleanup.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_cleanup.cc.o.d"
  "/root/repo/tests/test_eibrs.cc" "tests/CMakeFiles/pibe_tests.dir/test_eibrs.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_eibrs.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/pibe_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/pibe_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_harden.cc" "tests/CMakeFiles/pibe_tests.dir/test_harden.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_harden.cc.o.d"
  "/root/repo/tests/test_icp.cc" "tests/CMakeFiles/pibe_tests.dir/test_icp.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_icp.cc.o.d"
  "/root/repo/tests/test_inline_core.cc" "tests/CMakeFiles/pibe_tests.dir/test_inline_core.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_inline_core.cc.o.d"
  "/root/repo/tests/test_inliner.cc" "tests/CMakeFiles/pibe_tests.dir/test_inliner.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_inliner.cc.o.d"
  "/root/repo/tests/test_ir.cc" "tests/CMakeFiles/pibe_tests.dir/test_ir.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_ir.cc.o.d"
  "/root/repo/tests/test_jump_tables.cc" "tests/CMakeFiles/pibe_tests.dir/test_jump_tables.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_jump_tables.cc.o.d"
  "/root/repo/tests/test_kernel.cc" "tests/CMakeFiles/pibe_tests.dir/test_kernel.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_kernel.cc.o.d"
  "/root/repo/tests/test_kernel_fs.cc" "tests/CMakeFiles/pibe_tests.dir/test_kernel_fs.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_kernel_fs.cc.o.d"
  "/root/repo/tests/test_parser.cc" "tests/CMakeFiles/pibe_tests.dir/test_parser.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_parser.cc.o.d"
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/pibe_tests.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/test_profile.cc" "tests/CMakeFiles/pibe_tests.dir/test_profile.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_profile.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/pibe_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_speculation.cc" "tests/CMakeFiles/pibe_tests.dir/test_speculation.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_speculation.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/pibe_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_uarch.cc" "tests/CMakeFiles/pibe_tests.dir/test_uarch.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_uarch.cc.o.d"
  "/root/repo/tests/test_uarch_advanced.cc" "tests/CMakeFiles/pibe_tests.dir/test_uarch_advanced.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_uarch_advanced.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/pibe_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/pibe_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pibe/CMakeFiles/pibe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harden/CMakeFiles/pibe_harden.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/pibe_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/pibe_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/pibe_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pibe_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/pibe_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pibe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pibe_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pibe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
