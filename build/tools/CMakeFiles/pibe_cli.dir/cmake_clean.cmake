file(REMOVE_RECURSE
  "CMakeFiles/pibe_cli.dir/pibe_cli.cc.o"
  "CMakeFiles/pibe_cli.dir/pibe_cli.cc.o.d"
  "pibe"
  "pibe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pibe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
