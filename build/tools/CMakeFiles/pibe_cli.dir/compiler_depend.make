# Empty compiler generated dependencies file for pibe_cli.
# This may be replaced when dependencies are built.
