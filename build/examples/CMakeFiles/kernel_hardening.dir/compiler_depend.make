# Empty compiler generated dependencies file for kernel_hardening.
# This may be replaced when dependencies are built.
