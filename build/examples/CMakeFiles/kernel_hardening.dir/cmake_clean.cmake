file(REMOVE_RECURSE
  "CMakeFiles/kernel_hardening.dir/kernel_hardening.cpp.o"
  "CMakeFiles/kernel_hardening.dir/kernel_hardening.cpp.o.d"
  "kernel_hardening"
  "kernel_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
