# Empty dependencies file for pibe_core.
# This may be replaced when dependencies are built.
