file(REMOVE_RECURSE
  "CMakeFiles/pibe_core.dir/experiment.cc.o"
  "CMakeFiles/pibe_core.dir/experiment.cc.o.d"
  "CMakeFiles/pibe_core.dir/pipeline.cc.o"
  "CMakeFiles/pibe_core.dir/pipeline.cc.o.d"
  "libpibe_core.a"
  "libpibe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pibe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
