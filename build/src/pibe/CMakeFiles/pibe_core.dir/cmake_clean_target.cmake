file(REMOVE_RECURSE
  "libpibe_core.a"
)
