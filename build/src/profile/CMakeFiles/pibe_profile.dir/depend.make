# Empty dependencies file for pibe_profile.
# This may be replaced when dependencies are built.
