file(REMOVE_RECURSE
  "libpibe_profile.a"
)
