file(REMOVE_RECURSE
  "CMakeFiles/pibe_profile.dir/edge_profile.cc.o"
  "CMakeFiles/pibe_profile.dir/edge_profile.cc.o.d"
  "CMakeFiles/pibe_profile.dir/serialize.cc.o"
  "CMakeFiles/pibe_profile.dir/serialize.cc.o.d"
  "libpibe_profile.a"
  "libpibe_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pibe_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
