
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/call_graph.cc" "src/analysis/CMakeFiles/pibe_analysis.dir/call_graph.cc.o" "gcc" "src/analysis/CMakeFiles/pibe_analysis.dir/call_graph.cc.o.d"
  "/root/repo/src/analysis/inline_cost.cc" "src/analysis/CMakeFiles/pibe_analysis.dir/inline_cost.cc.o" "gcc" "src/analysis/CMakeFiles/pibe_analysis.dir/inline_cost.cc.o.d"
  "/root/repo/src/analysis/layout.cc" "src/analysis/CMakeFiles/pibe_analysis.dir/layout.cc.o" "gcc" "src/analysis/CMakeFiles/pibe_analysis.dir/layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pibe_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pibe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
