# Empty dependencies file for pibe_analysis.
# This may be replaced when dependencies are built.
