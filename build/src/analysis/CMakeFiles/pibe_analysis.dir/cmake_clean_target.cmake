file(REMOVE_RECURSE
  "libpibe_analysis.a"
)
