file(REMOVE_RECURSE
  "CMakeFiles/pibe_analysis.dir/call_graph.cc.o"
  "CMakeFiles/pibe_analysis.dir/call_graph.cc.o.d"
  "CMakeFiles/pibe_analysis.dir/inline_cost.cc.o"
  "CMakeFiles/pibe_analysis.dir/inline_cost.cc.o.d"
  "CMakeFiles/pibe_analysis.dir/layout.cc.o"
  "CMakeFiles/pibe_analysis.dir/layout.cc.o.d"
  "libpibe_analysis.a"
  "libpibe_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pibe_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
