file(REMOVE_RECURSE
  "libpibe_ir.a"
)
