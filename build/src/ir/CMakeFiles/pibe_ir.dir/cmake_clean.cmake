file(REMOVE_RECURSE
  "CMakeFiles/pibe_ir.dir/builder.cc.o"
  "CMakeFiles/pibe_ir.dir/builder.cc.o.d"
  "CMakeFiles/pibe_ir.dir/parser.cc.o"
  "CMakeFiles/pibe_ir.dir/parser.cc.o.d"
  "CMakeFiles/pibe_ir.dir/printer.cc.o"
  "CMakeFiles/pibe_ir.dir/printer.cc.o.d"
  "CMakeFiles/pibe_ir.dir/verifier.cc.o"
  "CMakeFiles/pibe_ir.dir/verifier.cc.o.d"
  "libpibe_ir.a"
  "libpibe_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pibe_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
