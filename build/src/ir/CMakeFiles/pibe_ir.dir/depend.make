# Empty dependencies file for pibe_ir.
# This may be replaced when dependencies are built.
