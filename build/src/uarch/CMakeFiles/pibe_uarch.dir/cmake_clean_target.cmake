file(REMOVE_RECURSE
  "libpibe_uarch.a"
)
