# Empty dependencies file for pibe_uarch.
# This may be replaced when dependencies are built.
