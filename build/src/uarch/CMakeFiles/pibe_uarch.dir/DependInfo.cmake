
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/icache.cc" "src/uarch/CMakeFiles/pibe_uarch.dir/icache.cc.o" "gcc" "src/uarch/CMakeFiles/pibe_uarch.dir/icache.cc.o.d"
  "/root/repo/src/uarch/simulator.cc" "src/uarch/CMakeFiles/pibe_uarch.dir/simulator.cc.o" "gcc" "src/uarch/CMakeFiles/pibe_uarch.dir/simulator.cc.o.d"
  "/root/repo/src/uarch/speculation.cc" "src/uarch/CMakeFiles/pibe_uarch.dir/speculation.cc.o" "gcc" "src/uarch/CMakeFiles/pibe_uarch.dir/speculation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pibe_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pibe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/pibe_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pibe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
