file(REMOVE_RECURSE
  "CMakeFiles/pibe_uarch.dir/icache.cc.o"
  "CMakeFiles/pibe_uarch.dir/icache.cc.o.d"
  "CMakeFiles/pibe_uarch.dir/simulator.cc.o"
  "CMakeFiles/pibe_uarch.dir/simulator.cc.o.d"
  "CMakeFiles/pibe_uarch.dir/speculation.cc.o"
  "CMakeFiles/pibe_uarch.dir/speculation.cc.o.d"
  "libpibe_uarch.a"
  "libpibe_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pibe_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
