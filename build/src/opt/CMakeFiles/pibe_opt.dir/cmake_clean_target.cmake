file(REMOVE_RECURSE
  "libpibe_opt.a"
)
