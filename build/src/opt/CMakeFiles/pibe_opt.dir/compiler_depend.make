# Empty compiler generated dependencies file for pibe_opt.
# This may be replaced when dependencies are built.
