
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cleanup.cc" "src/opt/CMakeFiles/pibe_opt.dir/cleanup.cc.o" "gcc" "src/opt/CMakeFiles/pibe_opt.dir/cleanup.cc.o.d"
  "/root/repo/src/opt/default_inliner.cc" "src/opt/CMakeFiles/pibe_opt.dir/default_inliner.cc.o" "gcc" "src/opt/CMakeFiles/pibe_opt.dir/default_inliner.cc.o.d"
  "/root/repo/src/opt/icp.cc" "src/opt/CMakeFiles/pibe_opt.dir/icp.cc.o" "gcc" "src/opt/CMakeFiles/pibe_opt.dir/icp.cc.o.d"
  "/root/repo/src/opt/inline_core.cc" "src/opt/CMakeFiles/pibe_opt.dir/inline_core.cc.o" "gcc" "src/opt/CMakeFiles/pibe_opt.dir/inline_core.cc.o.d"
  "/root/repo/src/opt/jump_tables.cc" "src/opt/CMakeFiles/pibe_opt.dir/jump_tables.cc.o" "gcc" "src/opt/CMakeFiles/pibe_opt.dir/jump_tables.cc.o.d"
  "/root/repo/src/opt/pibe_inliner.cc" "src/opt/CMakeFiles/pibe_opt.dir/pibe_inliner.cc.o" "gcc" "src/opt/CMakeFiles/pibe_opt.dir/pibe_inliner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pibe_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pibe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/pibe_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pibe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
