file(REMOVE_RECURSE
  "CMakeFiles/pibe_opt.dir/cleanup.cc.o"
  "CMakeFiles/pibe_opt.dir/cleanup.cc.o.d"
  "CMakeFiles/pibe_opt.dir/default_inliner.cc.o"
  "CMakeFiles/pibe_opt.dir/default_inliner.cc.o.d"
  "CMakeFiles/pibe_opt.dir/icp.cc.o"
  "CMakeFiles/pibe_opt.dir/icp.cc.o.d"
  "CMakeFiles/pibe_opt.dir/inline_core.cc.o"
  "CMakeFiles/pibe_opt.dir/inline_core.cc.o.d"
  "CMakeFiles/pibe_opt.dir/jump_tables.cc.o"
  "CMakeFiles/pibe_opt.dir/jump_tables.cc.o.d"
  "CMakeFiles/pibe_opt.dir/pibe_inliner.cc.o"
  "CMakeFiles/pibe_opt.dir/pibe_inliner.cc.o.d"
  "libpibe_opt.a"
  "libpibe_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pibe_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
