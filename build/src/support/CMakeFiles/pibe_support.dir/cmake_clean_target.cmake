file(REMOVE_RECURSE
  "libpibe_support.a"
)
