# Empty dependencies file for pibe_support.
# This may be replaced when dependencies are built.
