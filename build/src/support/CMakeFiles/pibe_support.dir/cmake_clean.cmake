file(REMOVE_RECURSE
  "CMakeFiles/pibe_support.dir/logging.cc.o"
  "CMakeFiles/pibe_support.dir/logging.cc.o.d"
  "CMakeFiles/pibe_support.dir/stats.cc.o"
  "CMakeFiles/pibe_support.dir/stats.cc.o.d"
  "CMakeFiles/pibe_support.dir/table.cc.o"
  "CMakeFiles/pibe_support.dir/table.cc.o.d"
  "libpibe_support.a"
  "libpibe_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pibe_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
