file(REMOVE_RECURSE
  "CMakeFiles/pibe_kernel.dir/kernel_core.cc.o"
  "CMakeFiles/pibe_kernel.dir/kernel_core.cc.o.d"
  "CMakeFiles/pibe_kernel.dir/kernel_drivers.cc.o"
  "CMakeFiles/pibe_kernel.dir/kernel_drivers.cc.o.d"
  "CMakeFiles/pibe_kernel.dir/kernel_systems.cc.o"
  "CMakeFiles/pibe_kernel.dir/kernel_systems.cc.o.d"
  "libpibe_kernel.a"
  "libpibe_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pibe_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
