# Empty compiler generated dependencies file for pibe_kernel.
# This may be replaced when dependencies are built.
