file(REMOVE_RECURSE
  "libpibe_kernel.a"
)
