
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/kernel_core.cc" "src/kernel/CMakeFiles/pibe_kernel.dir/kernel_core.cc.o" "gcc" "src/kernel/CMakeFiles/pibe_kernel.dir/kernel_core.cc.o.d"
  "/root/repo/src/kernel/kernel_drivers.cc" "src/kernel/CMakeFiles/pibe_kernel.dir/kernel_drivers.cc.o" "gcc" "src/kernel/CMakeFiles/pibe_kernel.dir/kernel_drivers.cc.o.d"
  "/root/repo/src/kernel/kernel_systems.cc" "src/kernel/CMakeFiles/pibe_kernel.dir/kernel_systems.cc.o" "gcc" "src/kernel/CMakeFiles/pibe_kernel.dir/kernel_systems.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pibe_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pibe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
