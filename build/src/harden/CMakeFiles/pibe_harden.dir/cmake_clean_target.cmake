file(REMOVE_RECURSE
  "libpibe_harden.a"
)
