# Empty compiler generated dependencies file for pibe_harden.
# This may be replaced when dependencies are built.
