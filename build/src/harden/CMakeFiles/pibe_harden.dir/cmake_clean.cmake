file(REMOVE_RECURSE
  "CMakeFiles/pibe_harden.dir/harden.cc.o"
  "CMakeFiles/pibe_harden.dir/harden.cc.o.d"
  "libpibe_harden.a"
  "libpibe_harden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pibe_harden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
