file(REMOVE_RECURSE
  "libpibe_workload.a"
)
