file(REMOVE_RECURSE
  "CMakeFiles/pibe_workload.dir/lmbench.cc.o"
  "CMakeFiles/pibe_workload.dir/lmbench.cc.o.d"
  "CMakeFiles/pibe_workload.dir/macro.cc.o"
  "CMakeFiles/pibe_workload.dir/macro.cc.o.d"
  "libpibe_workload.a"
  "libpibe_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pibe_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
