# Empty compiler generated dependencies file for pibe_workload.
# This may be replaced when dependencies are built.
