file(REMOVE_RECURSE
  "CMakeFiles/table6_per_defense.dir/table6_per_defense.cc.o"
  "CMakeFiles/table6_per_defense.dir/table6_per_defense.cc.o.d"
  "table6_per_defense"
  "table6_per_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_per_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
