# Empty compiler generated dependencies file for table6_per_defense.
# This may be replaced when dependencies are built.
