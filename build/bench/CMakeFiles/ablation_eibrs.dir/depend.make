# Empty dependencies file for ablation_eibrs.
# This may be replaced when dependencies are built.
