file(REMOVE_RECURSE
  "CMakeFiles/ablation_eibrs.dir/ablation_eibrs.cc.o"
  "CMakeFiles/ablation_eibrs.dir/ablation_eibrs.cc.o.d"
  "ablation_eibrs"
  "ablation_eibrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eibrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
