file(REMOVE_RECURSE
  "CMakeFiles/table11_forward_edges.dir/table11_forward_edges.cc.o"
  "CMakeFiles/table11_forward_edges.dir/table11_forward_edges.cc.o.d"
  "table11_forward_edges"
  "table11_forward_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_forward_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
