# Empty dependencies file for table11_forward_edges.
# This may be replaced when dependencies are built.
