# Empty dependencies file for table10_candidates.
# This may be replaced when dependencies are built.
