file(REMOVE_RECURSE
  "CMakeFiles/table10_candidates.dir/table10_candidates.cc.o"
  "CMakeFiles/table10_candidates.dir/table10_candidates.cc.o.d"
  "table10_candidates"
  "table10_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
