# Empty dependencies file for table12_size.
# This may be replaced when dependencies are built.
