file(REMOVE_RECURSE
  "CMakeFiles/table12_size.dir/table12_size.cc.o"
  "CMakeFiles/table12_size.dir/table12_size.cc.o.d"
  "table12_size"
  "table12_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
