# Empty compiler generated dependencies file for table8_gadget_elimination.
# This may be replaced when dependencies are built.
