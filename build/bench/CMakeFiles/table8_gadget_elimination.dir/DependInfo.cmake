
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table8_gadget_elimination.cc" "bench/CMakeFiles/table8_gadget_elimination.dir/table8_gadget_elimination.cc.o" "gcc" "bench/CMakeFiles/table8_gadget_elimination.dir/table8_gadget_elimination.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pibe/CMakeFiles/pibe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harden/CMakeFiles/pibe_harden.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/pibe_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/pibe_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/pibe_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pibe_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/pibe_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pibe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pibe_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pibe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
