file(REMOVE_RECURSE
  "CMakeFiles/table8_gadget_elimination.dir/table8_gadget_elimination.cc.o"
  "CMakeFiles/table8_gadget_elimination.dir/table8_gadget_elimination.cc.o.d"
  "table8_gadget_elimination"
  "table8_gadget_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_gadget_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
