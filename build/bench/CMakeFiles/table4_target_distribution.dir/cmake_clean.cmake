file(REMOVE_RECURSE
  "CMakeFiles/table4_target_distribution.dir/table4_target_distribution.cc.o"
  "CMakeFiles/table4_target_distribution.dir/table4_target_distribution.cc.o.d"
  "table4_target_distribution"
  "table4_target_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_target_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
