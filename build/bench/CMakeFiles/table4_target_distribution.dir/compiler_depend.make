# Empty compiler generated dependencies file for table4_target_distribution.
# This may be replaced when dependencies are built.
