# Empty compiler generated dependencies file for table2_baselines.
# This may be replaced when dependencies are built.
