# Empty compiler generated dependencies file for ablation_inliner.
# This may be replaced when dependencies are built.
