file(REMOVE_RECURSE
  "CMakeFiles/ablation_inliner.dir/ablation_inliner.cc.o"
  "CMakeFiles/ablation_inliner.dir/ablation_inliner.cc.o.d"
  "ablation_inliner"
  "ablation_inliner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inliner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
