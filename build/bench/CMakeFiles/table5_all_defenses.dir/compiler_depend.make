# Empty compiler generated dependencies file for table5_all_defenses.
# This may be replaced when dependencies are built.
