file(REMOVE_RECURSE
  "CMakeFiles/table5_all_defenses.dir/table5_all_defenses.cc.o"
  "CMakeFiles/table5_all_defenses.dir/table5_all_defenses.cc.o.d"
  "table5_all_defenses"
  "table5_all_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_all_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
