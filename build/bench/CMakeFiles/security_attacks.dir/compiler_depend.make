# Empty compiler generated dependencies file for security_attacks.
# This may be replaced when dependencies are built.
