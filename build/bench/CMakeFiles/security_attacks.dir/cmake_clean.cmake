file(REMOVE_RECURSE
  "CMakeFiles/security_attacks.dir/security_attacks.cc.o"
  "CMakeFiles/security_attacks.dir/security_attacks.cc.o.d"
  "security_attacks"
  "security_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
