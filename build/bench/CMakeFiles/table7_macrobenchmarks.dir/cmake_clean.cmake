file(REMOVE_RECURSE
  "CMakeFiles/table7_macrobenchmarks.dir/table7_macrobenchmarks.cc.o"
  "CMakeFiles/table7_macrobenchmarks.dir/table7_macrobenchmarks.cc.o.d"
  "table7_macrobenchmarks"
  "table7_macrobenchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_macrobenchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
