# Empty dependencies file for table7_macrobenchmarks.
# This may be replaced when dependencies are built.
