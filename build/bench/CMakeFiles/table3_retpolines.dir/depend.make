# Empty dependencies file for table3_retpolines.
# This may be replaced when dependencies are built.
