file(REMOVE_RECURSE
  "CMakeFiles/table3_retpolines.dir/table3_retpolines.cc.o"
  "CMakeFiles/table3_retpolines.dir/table3_retpolines.cc.o.d"
  "table3_retpolines"
  "table3_retpolines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_retpolines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
