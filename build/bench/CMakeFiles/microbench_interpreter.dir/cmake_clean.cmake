file(REMOVE_RECURSE
  "CMakeFiles/microbench_interpreter.dir/microbench_interpreter.cc.o"
  "CMakeFiles/microbench_interpreter.dir/microbench_interpreter.cc.o.d"
  "microbench_interpreter"
  "microbench_interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
