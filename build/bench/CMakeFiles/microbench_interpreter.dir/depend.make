# Empty dependencies file for microbench_interpreter.
# This may be replaced when dependencies are built.
