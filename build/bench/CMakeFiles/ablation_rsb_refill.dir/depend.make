# Empty dependencies file for ablation_rsb_refill.
# This may be replaced when dependencies are built.
