file(REMOVE_RECURSE
  "CMakeFiles/ablation_rsb_refill.dir/ablation_rsb_refill.cc.o"
  "CMakeFiles/ablation_rsb_refill.dir/ablation_rsb_refill.cc.o.d"
  "ablation_rsb_refill"
  "ablation_rsb_refill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rsb_refill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
