file(REMOVE_RECURSE
  "CMakeFiles/table_robustness.dir/table_robustness.cc.o"
  "CMakeFiles/table_robustness.dir/table_robustness.cc.o.d"
  "table_robustness"
  "table_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
