# Empty compiler generated dependencies file for table_robustness.
# This may be replaced when dependencies are built.
