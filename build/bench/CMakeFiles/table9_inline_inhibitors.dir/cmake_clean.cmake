file(REMOVE_RECURSE
  "CMakeFiles/table9_inline_inhibitors.dir/table9_inline_inhibitors.cc.o"
  "CMakeFiles/table9_inline_inhibitors.dir/table9_inline_inhibitors.cc.o.d"
  "table9_inline_inhibitors"
  "table9_inline_inhibitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_inline_inhibitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
