# Empty dependencies file for table9_inline_inhibitors.
# This may be replaced when dependencies are built.
