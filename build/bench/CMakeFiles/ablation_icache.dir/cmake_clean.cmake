file(REMOVE_RECURSE
  "CMakeFiles/ablation_icache.dir/ablation_icache.cc.o"
  "CMakeFiles/ablation_icache.dir/ablation_icache.cc.o.d"
  "ablation_icache"
  "ablation_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
