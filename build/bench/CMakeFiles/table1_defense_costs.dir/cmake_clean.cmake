file(REMOVE_RECURSE
  "CMakeFiles/table1_defense_costs.dir/table1_defense_costs.cc.o"
  "CMakeFiles/table1_defense_costs.dir/table1_defense_costs.cc.o.d"
  "table1_defense_costs"
  "table1_defense_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_defense_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
