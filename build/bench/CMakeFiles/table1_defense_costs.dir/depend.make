# Empty dependencies file for table1_defense_costs.
# This may be replaced when dependencies are built.
