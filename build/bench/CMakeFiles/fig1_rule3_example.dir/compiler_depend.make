# Empty compiler generated dependencies file for fig1_rule3_example.
# This may be replaced when dependencies are built.
