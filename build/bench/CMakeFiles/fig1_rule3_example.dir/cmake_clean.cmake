file(REMOVE_RECURSE
  "CMakeFiles/fig1_rule3_example.dir/fig1_rule3_example.cc.o"
  "CMakeFiles/fig1_rule3_example.dir/fig1_rule3_example.cc.o.d"
  "fig1_rule3_example"
  "fig1_rule3_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_rule3_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
