/** @file Unit tests for call graph, inline cost, and code layout. */
#include <gtest/gtest.h>

#include "analysis/call_graph.h"
#include "analysis/inline_cost.h"
#include "analysis/layout.h"
#include "ir/builder.h"
#include "tests/test_util.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;

/** a -> b -> c, d self-recursive, e <-> f mutually recursive. */
Module
makeGraphModule()
{
    Module m;
    ir::FuncId c = m.addFunction("c", 0);
    ir::FuncId b_ = m.addFunction("b", 0);
    ir::FuncId a = m.addFunction("a", 0);
    ir::FuncId d = m.addFunction("d", 0);
    ir::FuncId e = m.addFunction("e", 0);
    ir::FuncId f = m.addFunction("f", 0);
    {
        FunctionBuilder fb(m, c);
        fb.ret(fb.constI(1));
    }
    {
        FunctionBuilder fb(m, b_);
        fb.call(c);
        fb.call(c); // duplicate edge, must dedup
        fb.ret(fb.constI(2));
    }
    {
        FunctionBuilder fb(m, a);
        fb.call(b_);
        fb.ret(fb.constI(3));
    }
    {
        FunctionBuilder fb(m, d);
        fb.call(d);
        fb.ret(fb.constI(4));
    }
    {
        FunctionBuilder fb(m, e);
        fb.call(f);
        fb.ret(fb.constI(5));
    }
    {
        FunctionBuilder fb(m, f);
        fb.call(e);
        fb.ret(fb.constI(6));
    }
    return m;
}

TEST(CallGraph, CalleesAreDeduplicated)
{
    Module m = makeGraphModule();
    analysis::CallGraph cg(m);
    EXPECT_EQ(cg.callees(m.findFunction("b")).size(), 1u);
    EXPECT_EQ(cg.callees(m.findFunction("c")).size(), 0u);
}

TEST(CallGraph, SelfRecursionDetected)
{
    Module m = makeGraphModule();
    analysis::CallGraph cg(m);
    EXPECT_TRUE(cg.isRecursive(m.findFunction("d")));
    EXPECT_FALSE(cg.isRecursive(m.findFunction("a")));
}

TEST(CallGraph, MutualRecursionDetected)
{
    Module m = makeGraphModule();
    analysis::CallGraph cg(m);
    EXPECT_TRUE(cg.isRecursive(m.findFunction("e")));
    EXPECT_TRUE(cg.isRecursive(m.findFunction("f")));
}

TEST(CallGraph, BottomUpOrderPutsCalleesFirst)
{
    Module m = makeGraphModule();
    analysis::CallGraph cg(m);
    const auto& order = cg.bottomUpOrder();
    ASSERT_EQ(order.size(), m.numFunctions());
    auto pos = [&](const char* name) {
        ir::FuncId id = m.findFunction(name);
        for (size_t i = 0; i < order.size(); ++i) {
            if (order[i] == id)
                return i;
        }
        ADD_FAILURE() << name << " missing from bottom-up order";
        return size_t{0};
    };
    EXPECT_LT(pos("c"), pos("b"));
    EXPECT_LT(pos("b"), pos("a"));
}

TEST(CallGraph, FindSiteLocatesInstruction)
{
    Module m = makeGraphModule();
    ir::SiteId site =
        m.func(m.findFunction("a")).blocks[0].insts[0].site_id;
    analysis::SiteRef where;
    const ir::Instruction* inst = analysis::findSite(m, site, &where);
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(where.func, m.findFunction("a"));
    EXPECT_EQ(inst->op, ir::Opcode::kCall);
    EXPECT_EQ(analysis::findSite(m, 999999), nullptr);
}

TEST(InlineCost, PerInstructionCosts)
{
    ir::Instruction i;
    i.op = ir::Opcode::kConst;
    EXPECT_EQ(analysis::instructionCost(i), 0);
    i.op = ir::Opcode::kMove;
    EXPECT_EQ(analysis::instructionCost(i), 0);
    i.op = ir::Opcode::kBinOp;
    EXPECT_EQ(analysis::instructionCost(i), 5);
    i.op = ir::Opcode::kRet;
    EXPECT_EQ(analysis::instructionCost(i), 5);
    // Paper: a nested call costs 5 + 5 * num_args.
    i.op = ir::Opcode::kCall;
    i.args = {0, 1, 2};
    EXPECT_EQ(analysis::instructionCost(i), 20);
    i.op = ir::Opcode::kSwitch;
    i.args.clear();
    i.case_values = {1, 2, 3, 4};
    EXPECT_EQ(analysis::instructionCost(i), 13);
}

TEST(InlineCost, FunctionCostSumsInstructions)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg r = b.bin(BinKind::kAdd, b.param(0), b.param(0)); // 5
    b.sink(r);                                                // 5
    b.ret(r);                                                 // 5
    EXPECT_EQ(analysis::functionCost(m.func(f)), 15);
}

TEST(InlineCost, CacheInvalidation)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    {
        FunctionBuilder b(m, f);
        b.ret(b.param(0));
    }
    analysis::InlineCostCache cache(m);
    int64_t before = cache.cost(f);
    // Append an instruction behind the cache's back.
    ir::Instruction s;
    s.op = ir::Opcode::kSink;
    s.a = 0;
    auto& insts = m.func(f).blocks[0].insts;
    insts.insert(insts.begin(), s);
    EXPECT_EQ(cache.cost(f), before); // stale until invalidated
    cache.invalidate(f);
    EXPECT_EQ(cache.cost(f), before + 5);
}

TEST(Layout, AddressesAreMonotonic)
{
    test::GenConfig cfg;
    cfg.seed = 3;
    Module m = test::generateModule(cfg);
    analysis::CodeLayout layout(m);
    uint64_t prev_end = 0;
    for (const ir::Function& f : m.functions()) {
        EXPECT_GE(layout.funcBase(f.id), prev_end);
        uint64_t end = 0;
        for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
            EXPECT_LE(layout.blockStart(f.id, b),
                      layout.blockEnd(f.id, b));
            for (uint32_t i = 0; i < f.blocks[b].insts.size(); ++i) {
                uint64_t addr = layout.instAddr(f.id, b, i);
                EXPECT_GE(addr, layout.blockStart(f.id, b));
                EXPECT_LT(addr, layout.blockEnd(f.id, b));
            }
            end = std::max(end, layout.blockEnd(f.id, b));
        }
        prev_end = end;
    }
    EXPECT_GE(layout.imageSize(), prev_end);
}

TEST(Layout, HardeningGrowsInstructionSize)
{
    ir::Instruction icall;
    icall.op = ir::Opcode::kICall;
    icall.a = 0;
    uint32_t plain = analysis::instByteSize(icall);
    icall.fwd_scheme = ir::FwdScheme::kFencedRetpoline;
    EXPECT_GT(analysis::instByteSize(icall), plain);

    ir::Instruction ret;
    ret.op = ir::Opcode::kRet;
    uint32_t plain_ret = analysis::instByteSize(ret);
    EXPECT_EQ(plain_ret, 1u);
    ret.ret_scheme = ir::RetScheme::kFencedRet;
    EXPECT_GT(analysis::instByteSize(ret), plain_ret);
}

TEST(Layout, HardenedModuleIsLarger)
{
    test::GenConfig cfg;
    cfg.seed = 5;
    Module m = test::generateModule(cfg);
    uint64_t before = analysis::CodeLayout(m).imageSize();
    for (ir::Function& f : m.functions()) {
        for (auto& bb : f.blocks) {
            for (auto& inst : bb.insts) {
                if (inst.op == ir::Opcode::kICall)
                    inst.fwd_scheme = ir::FwdScheme::kFencedRetpoline;
                if (inst.op == ir::Opcode::kRet)
                    inst.ret_scheme = ir::RetScheme::kFencedRet;
            }
        }
    }
    EXPECT_GT(analysis::CodeLayout(m).imageSize(), before);
}

TEST(Layout, ResidentTextRoundsToLargePages)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    FunctionBuilder b(m, f);
    b.ret(b.constI(0));
    analysis::CodeLayout layout(m);
    // A near-empty image still occupies one large page of text.
    EXPECT_EQ(layout.residentTextSize(), 256ull << 10);
    EXPECT_EQ(layout.residentTextSize() % (256ull << 10), 0u);
}

} // namespace
} // namespace pibe
