/**
 * @file
 * Filesystem-behaviour matrix and additional kernel edge cases: each
 * fs type's read/write semantics, pipe ring mechanics, softirq-driven
 * driver activity, and exec/lseek corner cases.
 */
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "uarch/simulator.h"
#include "workload/workload.h"

namespace pibe {
namespace {

using kernel::KernelLayout;
namespace sysno = kernel::sysno;
namespace fstype = kernel::fstype;

class KernelFsTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        kernel::KernelConfig cfg;
        cfg.num_drivers = 8;
        image_ = new kernel::KernelImage(kernel::buildKernel(cfg));
    }

    static void
    TearDownTestSuite()
    {
        delete image_;
        image_ = nullptr;
    }

    void
    SetUp() override
    {
        sim_ = std::make_unique<uarch::Simulator>(image_->module);
        sim_->setTimingEnabled(false);
        handle_ = std::make_unique<workload::KernelHandle>(
            *sim_, image_->info);
        handle_->boot();
    }

    int64_t
    sys(int64_t nr, int64_t a0 = 0, int64_t a1 = 0, int64_t a2 = 0)
    {
        return handle_->syscall(nr, a0, a1, a2);
    }

    int64_t
    user(int64_t off)
    {
        return sim_->readGlobal(image_->info.kmem,
                                KernelLayout::kUserBase + off);
    }

    void
    setUser(int64_t off, int64_t v)
    {
        sim_->writeGlobal(image_->info.kmem,
                          KernelLayout::kUserBase + off, v);
    }

    /** fd_table[fd] field (for white-box checks). */
    int64_t
    fdField(int64_t fd, int64_t field)
    {
        return sim_->readGlobal(
            image_->info.kmem,
            KernelLayout::kFdTable + fd * KernelLayout::kFdSize +
                field);
    }

    static kernel::KernelImage* image_;
    std::unique_ptr<uarch::Simulator> sim_;
    std::unique_ptr<workload::KernelHandle> handle_;
};

kernel::KernelImage* KernelFsTest::image_ = nullptr;

// Path index -> fs type: init_vfs maps inode (i & 7): 0-4 ramfs,
// 5 extfs, 6 procfs, 7 devfs.
constexpr int64_t kRamfsPath = 0;
constexpr int64_t kExtfsPath = 5;
constexpr int64_t kProcfsPath = 6;
constexpr int64_t kDevfsPath = 7;

TEST_F(KernelFsTest, OpenSetsFsTypeFromInode)
{
    int64_t fd = sys(sysno::kOpen,
                     workload::KernelHandle::pathHash(kExtfsPath));
    ASSERT_GE(fd, 0);
    EXPECT_EQ(fdField(fd, 1), fstype::kExtfs);
    int64_t fd2 = sys(sysno::kOpen,
                      workload::KernelHandle::pathHash(kProcfsPath));
    EXPECT_EQ(fdField(fd2, 1), fstype::kProcfs);
}

TEST_F(KernelFsTest, ExtfsRoundTripsLikeRamfs)
{
    int64_t fd = sys(sysno::kOpen,
                     workload::KernelHandle::pathHash(kExtfsPath));
    ASSERT_GE(fd, 0);
    for (int64_t i = 0; i < 5; ++i)
        setUser(i, 6000 + i);
    EXPECT_EQ(sys(sysno::kWrite, fd, 0, 5), 5);
    EXPECT_EQ(sys(sysno::kLseek, fd, 0), 0);
    EXPECT_EQ(sys(sysno::kRead, fd, 64, 5), 5);
    for (int64_t i = 0; i < 5; ++i)
        EXPECT_EQ(user(64 + i), 6000 + i);
}

TEST_F(KernelFsTest, ProcfsGeneratesContentAndRejectsWrites)
{
    int64_t fd = sys(sysno::kOpen,
                     workload::KernelHandle::pathHash(kProcfsPath));
    ASSERT_GE(fd, 0);
    EXPECT_EQ(sys(sysno::kRead, fd, 96, 6), 6);
    // Generated (hashed) content is nonzero.
    int64_t nonzero = 0;
    for (int64_t i = 0; i < 6; ++i)
        nonzero += (user(96 + i) != 0);
    EXPECT_GE(nonzero, 5);
    EXPECT_EQ(sys(sysno::kWrite, fd, 0, 4), -1); // read-only
}

TEST_F(KernelFsTest, DevfsReadsZerosAndSinksWrites)
{
    int64_t fd = sys(sysno::kOpen,
                     workload::KernelHandle::pathHash(kDevfsPath));
    ASSERT_GE(fd, 0);
    for (int64_t i = 0; i < 4; ++i)
        setUser(128 + i, 999);
    EXPECT_EQ(sys(sysno::kRead, fd, 128, 4), 4);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(user(128 + i), 0); // /dev/zero semantics
    EXPECT_EQ(sys(sysno::kWrite, fd, 0, 4), 4); // /dev/null semantics
}

TEST_F(KernelFsTest, RamfsReadAdvancesPosition)
{
    int64_t fd = sys(sysno::kOpen,
                     workload::KernelHandle::pathHash(kRamfsPath));
    ASSERT_GE(fd, 0);
    EXPECT_EQ(fdField(fd, 3), 0);
    sys(sysno::kRead, fd, 0, 4);
    EXPECT_EQ(fdField(fd, 3), 4);
    sys(sysno::kRead, fd, 0, 4);
    EXPECT_EQ(fdField(fd, 3), 8);
    sys(sysno::kLseek, fd, 2);
    EXPECT_EQ(fdField(fd, 3), 2);
}

TEST_F(KernelFsTest, PipeDrainsInFifoOrder)
{
    int64_t pair = sys(sysno::kPipe);
    ASSERT_GE(pair, 0);
    int64_t rfd = pair & 0xffff;
    int64_t wfd = (pair >> 16) & 0xffff;
    setUser(0, 100);
    setUser(1, 101);
    EXPECT_EQ(sys(sysno::kWrite, wfd, 0, 2), 2);
    setUser(0, 102);
    EXPECT_EQ(sys(sysno::kWrite, wfd, 0, 1), 1);
    EXPECT_EQ(sys(sysno::kRead, rfd, 32, 3), 3);
    EXPECT_EQ(user(32), 100);
    EXPECT_EQ(user(33), 101);
    EXPECT_EQ(user(34), 102);
}

TEST_F(KernelFsTest, PipeShortReadsWhenUnderfilled)
{
    int64_t pair = sys(sysno::kPipe);
    int64_t rfd = pair & 0xffff;
    int64_t wfd = (pair >> 16) & 0xffff;
    EXPECT_EQ(sys(sysno::kWrite, wfd, 0, 3), 3);
    // Ask for 8, get the 3 available.
    EXPECT_EQ(sys(sysno::kRead, rfd, 16, 8), 3);
}

TEST_F(KernelFsTest, PipeTableRecyclesAfterClose)
{
    std::vector<std::pair<int64_t, int64_t>> pipes;
    for (int i = 0; i < 32; ++i) {
        int64_t pair = sys(sysno::kPipe);
        if (pair < 0)
            break;
        pipes.push_back({pair & 0xffff, (pair >> 16) & 0xffff});
        // Close both ends immediately; the slot must recycle.
        sys(sysno::kClose, pipes.back().first);
        sys(sysno::kClose, pipes.back().second);
    }
    EXPECT_EQ(pipes.size(), 32u); // never exhausted despite 16 slots
}

TEST_F(KernelFsTest, SoftirqsDriveDriverActivity)
{
    // Driver stats words live in each device's region; jiffies-driven
    // softirqs must eventually touch some device.
    int64_t before = 0, after = 0;
    for (uint32_t d = 0; d < image_->info.num_drivers; ++d) {
        before += sim_->readGlobal(
            image_->info.kmem,
            KernelLayout::kDriverBase + d * KernelLayout::kDriverWords);
    }
    for (int i = 0; i < 300; ++i)
        sys(sysno::kNull);
    for (uint32_t d = 0; d < image_->info.num_drivers; ++d) {
        after += sim_->readGlobal(
            image_->info.kmem,
            KernelLayout::kDriverBase + d * KernelLayout::kDriverWords);
    }
    EXPECT_NE(after, before);
}

TEST_F(KernelFsTest, JiffiesAdvancePerSyscall)
{
    int64_t j0 = sim_->readGlobal(image_->info.kmem,
                                  KernelLayout::kJiffies);
    for (int i = 0; i < 10; ++i)
        sys(sysno::kNull);
    int64_t j1 = sim_->readGlobal(image_->info.kmem,
                                  KernelLayout::kJiffies);
    EXPECT_GE(j1 - j0, 10);
}

TEST_F(KernelFsTest, SignalsAccumulateAcrossKills)
{
    sys(sysno::kSigaction, 3, 1); // counting handler on signal 3
    sys(sysno::kSigaction, 4, 1); // and on signal 4
    int64_t before = user(100);
    sys(sysno::kKill, 1, 3); // delivered at this syscall's exit
    sys(sysno::kKill, 1, 4);
    EXPECT_EQ(user(100), before + 2);
}

} // namespace
} // namespace pibe
