/**
 * @file
 * Tests for the extension features: RSB refilling (§6.4), attacker
 * timing modes, the constant-ratio ablation flag, and KernelInfo
 * recovery from parsed modules.
 */
#include <gtest/gtest.h>

#include "ir/parser.h"

#include "pibe/pipeline.h"
#include "ir/printer.h"
#include "kernel/kernel.h"
#include "opt/icp.h"
#include "opt/inliner.h"
#include "tests/test_util.h"
#include "uarch/simulator.h"
#include "uarch/speculation.h"
#include "workload/workload.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;
using uarch::AttackKind;
using uarch::TransientAttacker;

/** Victim: service(n) makes n direct calls (each with a return). */
struct RetVictim
{
    Module m;
    ir::FuncId service;
    ir::FuncId gadget;
};

RetVictim
makeRetVictim()
{
    RetVictim v;
    ir::FuncId leaf = v.m.addFunction("leaf", 1);
    {
        FunctionBuilder b(v.m, leaf);
        b.ret(b.param(0));
    }
    v.gadget = v.m.addFunction("gadget", 1);
    {
        FunctionBuilder b(v.m, v.gadget);
        b.sink(b.param(0));
        b.ret(b.constI(0));
    }
    v.service = v.m.addFunction("service", 1);
    FunctionBuilder b(v.m, v.service);
    ir::Reg acc = b.newReg();
    b.setRegConst(acc, 0);
    for (int i = 0; i < 8; ++i) {
        ir::Reg r = b.call(leaf, {acc});
        b.setReg(acc, r);
    }
    b.ret(acc);
    return v;
}

uint64_t
ret2specHits(bool rsb_refill, TransientAttacker::Timing timing,
             int entries = 50)
{
    RetVictim v = makeRetVictim();
    uarch::CostParams params;
    params.rsb_refill_on_entry = rsb_refill;
    uarch::Simulator sim(v.m, params);
    TransientAttacker attacker(AttackKind::kRet2spec,
                               sim.layout().funcBase(v.gadget), timing);
    sim.setObserver(&attacker);
    for (int i = 0; i < entries; ++i)
        sim.run(v.service, {i});
    return attacker.returnHits();
}

TEST(RsbRefill, EntryOnlyAttackerHitsWithoutRefill)
{
    EXPECT_GT(ret2specHits(false, TransientAttacker::Timing::kEntryOnly),
              0u);
}

TEST(RsbRefill, RefillBlocksEntryOnlyAttacker)
{
    EXPECT_EQ(ret2specHits(true, TransientAttacker::Timing::kEntryOnly),
              0u);
}

TEST(RsbRefill, RefillDoesNotBlockContinuousAttacker)
{
    // The §6.4 gap: refilling cleans state at entry; an attacker who
    // keeps poisoning during execution still wins.
    EXPECT_GT(ret2specHits(true, TransientAttacker::Timing::kContinuous),
              0u);
}

TEST(RsbRefill, ReturnRetpolinesBlockBothTimings)
{
    for (auto timing : {TransientAttacker::Timing::kEntryOnly,
                        TransientAttacker::Timing::kContinuous}) {
        RetVictim v = makeRetVictim();
        harden::applyDefenses(v.m,
                              harden::DefenseConfig::retRetpolinesOnly());
        uarch::Simulator sim(v.m);
        TransientAttacker attacker(AttackKind::kRet2spec,
                                   sim.layout().funcBase(v.gadget),
                                   timing);
        sim.setObserver(&attacker);
        for (int i = 0; i < 50; ++i)
            sim.run(v.service, {i});
        EXPECT_EQ(attacker.returnHits(), 0u);
    }
}

TEST(RsbRefill, RefillCostsCyclesPerEntry)
{
    RetVictim v = makeRetVictim();
    auto cycles_with = [&](bool refill) {
        uarch::CostParams params;
        params.rsb_refill_on_entry = refill;
        uarch::Simulator sim(v.m, params);
        for (int i = 0; i < 10; ++i)
            sim.run(v.service, {i});
        return sim.stats().cycles;
    };
    uint64_t plain = cycles_with(false);
    uint64_t refilled = cycles_with(true);
    EXPECT_EQ(refilled - plain, 10u * uarch::CostParams{}.cost_rsb_refill);
}

TEST(ConstantRatioAblation, DisablingReducesInlining)
{
    // Chain caller -> mid -> leaf, all hot. With propagation the
    // inherited leaf copy is inlined too; without it, it is not.
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 1);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.binImm(BinKind::kAdd, b.param(0), 1));
    }
    ir::FuncId mid = m.addFunction("mid", 1);
    ir::SiteId leaf_site;
    {
        FunctionBuilder b(m, mid);
        ir::Reg r = b.call(leaf, {b.param(0)});
        leaf_site = m.func(mid).blocks[0].insts[0].site_id;
        b.ret(r);
    }
    ir::FuncId caller = m.addFunction("caller", 1);
    ir::SiteId mid_site;
    {
        FunctionBuilder b(m, caller);
        ir::Reg r = b.call(mid, {b.param(0)});
        mid_site = m.func(caller).blocks[0].insts[0].site_id;
        b.ret(r);
    }
    auto make_profile = [&] {
        profile::EdgeProfile p;
        // The caller->mid edge is hottest, so it is inlined *first*;
        // the leaf call copied into caller only gets revisited if it
        // inherits a scaled count.
        p.addDirect(mid_site, 2000);
        p.addDirect(leaf_site, 1000);
        p.addInvocation(mid, 2000);
        p.addInvocation(leaf, 1000);
        return p;
    };
    // The leaf-in-mid original is inlined either way (it is a first-
    // class candidate); what differs is the copy inherited into caller.
    opt::PibeInlinerConfig with, without;
    with.budget = without.budget = 1.0;
    with.cleanup_callers = without.cleanup_callers = false;
    without.propagate_inherited_counts = false;

    Module m1 = m;
    auto p1 = make_profile();
    auto audit_with = opt::runPibeInliner(m1, p1, with);
    Module m2 = m;
    auto p2 = make_profile();
    auto audit_without = opt::runPibeInliner(m2, p2, without);
    EXPECT_GT(audit_with.inlined_weight, audit_without.inlined_weight);
}

TEST(KernelInfoRecovery, RoundTripsThroughText)
{
    kernel::KernelConfig cfg;
    cfg.num_drivers = 8;
    kernel::KernelImage k = kernel::buildKernel(cfg);
    Module parsed = ir::parseModule(ir::printModule(k.module));
    kernel::KernelInfo info = kernel::kernelInfoFromModule(parsed);
    EXPECT_EQ(parsed.func(info.sys_dispatch).name, "sys_dispatch");
    EXPECT_EQ(info.num_drivers, 8u);
    EXPECT_EQ(parsed.global(info.kmem).name, "kmem");

    // And the recovered handles actually drive the kernel.
    uarch::Simulator sim(parsed);
    sim.setTimingEnabled(false);
    workload::KernelHandle handle(sim, info);
    handle.boot();
    EXPECT_EQ(handle.syscall(kernel::sysno::kNull), 1);
}

TEST(KernelInfoRecoveryDeath, RejectsNonKernelModules)
{
    Module m;
    ir::FuncId f = m.addFunction("not_a_kernel", 0);
    FunctionBuilder b(m, f);
    b.ret(b.constI(0));
    EXPECT_DEATH(kernel::kernelInfoFromModule(m),
                 "not a synthetic kernel");
}

TEST(OptConfigFactories, ExposePaperConfigurations)
{
    auto none = core::OptConfig::none();
    EXPECT_FALSE(none.enable_icp);
    EXPECT_EQ(none.inliner, core::InlinerKind::kNone);

    auto icp = core::OptConfig::icpOnly(0.99);
    EXPECT_TRUE(icp.enable_icp);
    EXPECT_DOUBLE_EQ(icp.icp_budget, 0.99);
    EXPECT_EQ(icp.inliner, core::InlinerKind::kNone);

    auto lax = core::OptConfig::icpAndInline(0.999999, true);
    EXPECT_TRUE(lax.lax_heuristics);
    EXPECT_DOUBLE_EQ(lax.inline_budget, 0.999999);
    EXPECT_EQ(lax.inliner, core::InlinerKind::kPibe);
}

} // namespace
} // namespace pibe
