/**
 * @file
 * Deeper microarchitectural behaviour tests: RSB depth effects,
 * JumpSwitch multi-target learning, i-cache/inlining interaction, and
 * the copy-propagation pass.
 */
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "opt/cleanup.h"
#include "harden/harden.h"
#include "opt/icp.h"
#include "opt/inliner.h"
#include "tests/test_util.h"
#include "uarch/simulator.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;
using ir::Opcode;

/** Build a chain f0 -> f1 -> ... -> f(depth-1), each a plain call. */
struct Chain
{
    Module m;
    ir::FuncId entry;
};

Chain
makeCallChain(int depth)
{
    Chain c;
    ir::FuncId prev = ir::kInvalidFunc;
    for (int i = depth - 1; i >= 0; --i) {
        ir::FuncId f =
            c.m.addFunction("f" + std::to_string(i), 1);
        FunctionBuilder b(c.m, f);
        if (prev == ir::kInvalidFunc) {
            b.ret(b.binImm(BinKind::kAdd, b.param(0), 1));
        } else {
            ir::Reg r = b.call(prev, {b.param(0)});
            b.ret(r);
        }
        prev = f;
    }
    c.entry = prev;
    return c;
}

TEST(RsbDepth, DeepChainsOverflowTheReturnStack)
{
    // A 40-deep call chain exceeds the 16-entry RSB: the outer 24
    // returns mispredict on every traversal; a shallow chain does not.
    auto mispredicts = [](int depth) {
        Chain c = makeCallChain(depth);
        uarch::Simulator sim(c.m);
        sim.run(c.entry, {1}); // warm-up
        sim.clearStats();
        sim.run(c.entry, {1});
        return sim.stats().rsb_mispredicts;
    };
    EXPECT_EQ(mispredicts(8), 0u);
    uint64_t deep = mispredicts(40);
    EXPECT_GE(deep, 20u);
    EXPECT_LE(deep, 30u);
}

TEST(RsbDepth, InliningRemovesTheOverflow)
{
    Chain c = makeCallChain(40);
    profile::EdgeProfile p;
    {
        uarch::Simulator sim(c.m);
        sim.setTimingEnabled(false);
        sim.setProfiler(&p);
        sim.run(c.entry, {1});
    }
    opt::PibeInlinerConfig cfg;
    cfg.budget = 1.0;
    opt::runPibeInliner(c.m, p, cfg);
    uarch::Simulator sim(c.m);
    sim.run(c.entry, {1});
    sim.clearStats();
    sim.run(c.entry, {1});
    EXPECT_EQ(sim.stats().rsb_mispredicts, 0u);
    EXPECT_EQ(sim.stats().returns, 1u); // only the entry's own return
}

/** Victim with a 3-target indirect call rotating targets. */
struct MultiTarget
{
    Module m;
    ir::FuncId entry;
};

MultiTarget
makeMultiTarget()
{
    MultiTarget v;
    std::vector<int64_t> table;
    for (int t = 0; t < 3; ++t) {
        ir::FuncId f = v.m.addFunction("t" + std::to_string(t), 1);
        FunctionBuilder b(v.m, f);
        b.ret(b.binImm(BinKind::kAdd, b.param(0), t));
        table.push_back(ir::funcAddrValue(f));
    }
    v.m.addGlobal("table", std::move(table));
    v.entry = v.m.addFunction("entry", 1);
    FunctionBuilder b(v.m, v.entry);
    ir::Reg sel = b.binImm(BinKind::kRem, b.param(0), 3);
    ir::Reg t = b.load(0, sel);
    ir::Reg r = b.icall(t, {b.param(0)});
    b.ret(r);
    return v;
}

TEST(JumpSwitches, MultiTargetSitesEnterLearningMode)
{
    MultiTarget v = makeMultiTarget();
    harden::applyDefenses(v.m, harden::DefenseConfig::jumpSwitches());
    uarch::CostParams params;
    params.js_learn_period = 64; // make relearning frequent for test
    params.js_learn_duration = 8;
    uarch::Simulator sim(v.m, params);
    for (int64_t i = 0; i < 500; ++i)
        sim.run(v.entry, {i});
    const auto& s = sim.stats();
    EXPECT_EQ(s.js_patches, 3u);   // three targets learned
    EXPECT_GT(s.js_hits, 400u);    // mostly inline-check hits
    EXPECT_GT(s.js_learning, 10u); // but periodic learning bouts
}

TEST(JumpSwitches, OverflowFallsBackToRetpoline)
{
    MultiTarget v = makeMultiTarget();
    harden::applyDefenses(v.m, harden::DefenseConfig::jumpSwitches());
    uarch::CostParams params;
    params.js_max_inline_targets = 1; // only one slot
    params.js_learn_period = 1u << 30; // no relearning noise
    uarch::Simulator sim(v.m, params);
    for (int64_t i = 0; i < 300; ++i)
        sim.run(v.entry, {i});
    const auto& s = sim.stats();
    EXPECT_EQ(s.js_patches, 1u);
    EXPECT_GT(s.js_misses, 150u); // two of three targets always miss
}

TEST(CopyProp, EliminatesArgBindingMoves)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 2);
    FunctionBuilder b(m, f);
    ir::Reg copy = b.move(b.param(0));
    ir::Reg copy2 = b.move(copy);
    ir::Reg sum = b.bin(BinKind::kAdd, copy2, b.param(1));
    b.ret(sum);
    EXPECT_TRUE(opt::copyPropagate(m.func(f)));
    EXPECT_TRUE(opt::deadCodeElim(m.func(f)));
    size_t moves = 0;
    for (const auto& inst : m.func(f).blocks[0].insts)
        moves += (inst.op == Opcode::kMove);
    EXPECT_EQ(moves, 0u);
    EXPECT_EQ(test::runFunction(m, f, {3, 4}).result, 7);
}

TEST(CopyProp, StopsAtSourceRedefinition)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg copy = b.move(b.param(0));       // copy = p0
    b.setRegConst(b.param(0), 99);           // p0 redefined!
    ir::Reg sum = b.binImm(BinKind::kAdd, copy, 1); // must use old p0
    b.ret(sum);
    auto before = test::runFunction(m, f, {5});
    EXPECT_EQ(before.result, 6);
    opt::copyPropagate(m.func(f));
    EXPECT_EQ(test::runFunction(m, f, {5}), before);
}

TEST(CopyProp, StopsAtDestRedefinition)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg copy = b.move(b.param(0)); // copy = p0
    b.setRegConst(copy, 42);           // copy redefined
    ir::Reg sum = b.binImm(BinKind::kAdd, copy, 1); // must see 42
    b.ret(sum);
    opt::copyPropagate(m.func(f));
    EXPECT_EQ(test::runFunction(m, f, {5}).result, 43);
}

class CopyPropProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CopyPropProperty, PreservesSemantics)
{
    test::GenConfig cfg;
    cfg.seed = GetParam() * 13 + 1;
    Module m = test::generateModule(cfg);
    ir::FuncId main = test::generatedMain(m);
    auto before = test::runScript(m, main, test::argMatrix());
    for (ir::Function& f : m.functions())
        opt::copyPropagate(f);
    ASSERT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runScript(m, main, test::argMatrix()), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CopyPropProperty,
                         ::testing::Range<uint64_t>(1, 13));

TEST(IcpInlineInterplay, PromotedTargetsBecomeInlineCandidates)
{
    // An indirect-only call graph: without ICP the inliner has no
    // candidates; after ICP the promoted direct edges get inlined.
    MultiTarget v = makeMultiTarget();
    profile::EdgeProfile p;
    {
        uarch::Simulator sim(v.m);
        sim.setTimingEnabled(false);
        sim.setProfiler(&p);
        for (int64_t i = 0; i < 90; ++i)
            sim.run(v.entry, {i});
    }
    auto before = test::runScript(v.m, v.entry,
                                  {{0}, {1}, {2}, {7}, {11}});
    profile::EdgeProfile p_no_icp = p;
    Module no_icp = v.m;
    auto audit0 = opt::runPibeInliner(no_icp, p_no_icp, {});
    EXPECT_EQ(audit0.candidate_sites, 0u);

    opt::runIcp(v.m, p, {});
    opt::PibeInlinerConfig cfg;
    cfg.budget = 1.0;
    auto audit = opt::runPibeInliner(v.m, p, cfg);
    EXPECT_EQ(audit.inlined_sites, 3u);
    EXPECT_TRUE(test::verifies(v.m));
    EXPECT_EQ(test::runScript(v.m, v.entry, {{0}, {1}, {2}, {7}, {11}}),
              before);
}

} // namespace
} // namespace pibe
