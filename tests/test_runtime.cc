/**
 * @file
 * Tests for the experiment runtime (src/runtime) and the engine built
 * on it: thread pool, DAG scheduler, digests, artifact cache, and the
 * bit-identical parallel-vs-serial guarantee of runExperiments().
 *
 * All tests are prefixed Runtime* so CI can run exactly this suite
 * under ThreadSanitizer (--gtest_filter='Runtime*').
 */
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "pibe/engine.h"
#include "runtime/artifact_cache.h"
#include "runtime/digest.h"
#include "runtime/job_graph.h"
#include "runtime/thread_pool.h"

namespace pibe {
namespace {

using runtime::ArtifactCache;
using runtime::Digest;
using runtime::JobContext;
using runtime::JobGraph;
using runtime::ThreadPool;

// ---------------------------------------------------------------------
// ThreadPool

TEST(RuntimeThreadPool, StressManyTasksAllRun)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 500; ++i) {
        futures.push_back(pool.submit([&counter, i] {
            counter.fetch_add(1, std::memory_order_relaxed);
            return i * 2;
        }));
    }
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(futures[i].get(), i * 2);
    EXPECT_EQ(counter.load(), 500);
    EXPECT_EQ(pool.tasksRun(), 500u);
}

TEST(RuntimeThreadPool, ShutdownDrainsQueuedWork)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit(
                [&counter] { counter.fetch_add(1); });
        pool.shutdown(); // Must finish everything already queued.
        EXPECT_EQ(counter.load(), 100);
        pool.shutdown(); // Idempotent.
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(RuntimeThreadPool, ZeroThreadsClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(RuntimeThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(RuntimeThreadPool, StopDrainRunsEverythingSubmitted)
{
    std::atomic<int> counter{0};
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(
            pool.submit([&counter] { counter.fetch_add(1); }));
    pool.stop(ThreadPool::StopMode::kDrain);
    EXPECT_EQ(counter.load(), 200);
    EXPECT_EQ(pool.tasksRun(), 200u);
    EXPECT_EQ(pool.cancelledTasks(), 0u);
    for (auto& f : futures)
        EXPECT_NO_THROW(f.get());
}

TEST(RuntimeThreadPool, StopCancelDropsQueuedWork)
{
    // One worker blocked on a gate guarantees a backlog; kCancel must
    // account for every queued task (run + cancelled = submitted) and
    // break the dropped tasks' futures instead of leaving them hung.
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    ThreadPool pool(1);
    auto blocker = pool.submit([&] {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
    });
    std::vector<std::future<void>> queued;
    for (int i = 0; i < 50; ++i)
        queued.push_back(pool.submit([] {}));
    // stop(kCancel) clears the queue before joining workers, so the
    // cancel count reaches 50 while the blocker still holds the one
    // worker — then we release it and the join completes.
    std::thread stopper(
        [&] { pool.stop(ThreadPool::StopMode::kCancel); });
    while (pool.cancelledTasks() != 50)
        std::this_thread::yield();
    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    stopper.join();
    blocker.get();
    EXPECT_EQ(pool.tasksRun(), 1u);
    EXPECT_EQ(pool.cancelledTasks(), 50u);
    EXPECT_EQ(pool.tasksRun() + pool.cancelledTasks(),
              pool.tasksSubmitted());
    size_t broken = 0;
    for (auto& f : queued) {
        try {
            f.get();
            ADD_FAILURE() << "cancelled future did not break";
        } catch (const std::future_error& e) {
            EXPECT_EQ(e.code(),
                      std::make_error_code(
                          std::future_errc::broken_promise));
            ++broken;
        }
    }
    EXPECT_EQ(broken, 50u);
    pool.stop(ThreadPool::StopMode::kCancel); // Idempotent.
}

// ---------------------------------------------------------------------
// JobGraph

TEST(RuntimeJobGraph, DiamondRespectsDependencyOrder)
{
    // a -> {b, c} -> d, run many times to shake out races.
    for (int round = 0; round < 20; ++round) {
        JobGraph graph;
        std::mutex mu;
        std::vector<std::string> order;
        auto record = [&](const char* name) {
            std::lock_guard<std::mutex> lock(mu);
            order.emplace_back(name);
        };
        auto a = graph.add("a", [&](const JobContext&) { record("a"); });
        auto b = graph.add("b", [&](const JobContext&) { record("b"); },
                           {a});
        auto c = graph.add("c", [&](const JobContext&) { record("c"); },
                           {a});
        graph.add("d", [&](const JobContext&) { record("d"); }, {b, c});

        ThreadPool pool(4);
        graph.run(pool);

        ASSERT_EQ(order.size(), 4u);
        EXPECT_EQ(order.front(), "a");
        EXPECT_EQ(order.back(), "d");
    }
}

TEST(RuntimeJobGraph, ChainRunsInSequence)
{
    JobGraph graph;
    std::vector<int> order;
    runtime::JobId prev = graph.add(
        "j0", [&](const JobContext&) { order.push_back(0); });
    for (int i = 1; i < 10; ++i) {
        prev = graph.add(
            "j" + std::to_string(i),
            [&, i](const JobContext&) { order.push_back(i); }, {prev});
    }
    ThreadPool pool(4);
    graph.run(pool);
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(RuntimeJobGraph, FailureSkipsDependentsAndRethrows)
{
    JobGraph graph;
    std::atomic<bool> leaf_ran{false};
    std::atomic<bool> independent_ran{false};
    auto bad = graph.add("bad", [&](const JobContext&) {
        throw std::runtime_error("job failed");
    });
    auto mid = graph.add("mid", [&](const JobContext&) {}, {bad});
    graph.add("leaf", [&](const JobContext&) { leaf_ran = true; },
              {mid});
    graph.add("independent",
              [&](const JobContext&) { independent_ran = true; });

    ThreadPool pool(2);
    EXPECT_THROW(graph.run(pool), std::runtime_error);
    EXPECT_FALSE(leaf_ran.load());
    EXPECT_TRUE(independent_ran.load());

    const auto& metrics = graph.metrics();
    ASSERT_EQ(metrics.size(), 4u);
    EXPECT_TRUE(metrics[0].ran);   // bad ran (and threw).
    EXPECT_FALSE(metrics[1].ran);  // mid skipped.
    EXPECT_FALSE(metrics[2].ran);  // leaf skipped.
    EXPECT_TRUE(metrics[3].ran);   // independent unaffected.
}

TEST(RuntimeJobGraph, SeedDerivesFromJobName)
{
    JobGraph graph;
    uint64_t seed_x = 0, seed_y = 0;
    graph.add("x", [&](const JobContext& ctx) { seed_x = ctx.seed; });
    graph.add("y", [&](const JobContext& ctx) { seed_y = ctx.seed; });
    ThreadPool pool(2);
    graph.run(pool);
    EXPECT_EQ(seed_x, Digest().add("x").value());
    EXPECT_EQ(seed_y, Digest().add("y").value());
    EXPECT_NE(seed_x, seed_y);
}

// ---------------------------------------------------------------------
// Digest

TEST(RuntimeDigest, StableAndSensitiveToEveryField)
{
    auto key = [](const std::string& s, uint64_t n, double d, bool b) {
        return Digest().add(s).add(n).add(d).add(b).hex();
    };
    const std::string base = key("kernel", 42, 1.5, true);
    EXPECT_EQ(base, key("kernel", 42, 1.5, true)); // Deterministic.
    EXPECT_EQ(base.size(), 32u);

    std::set<std::string> keys = {
        base,
        key("kernel2", 42, 1.5, true),
        key("kernel", 43, 1.5, true),
        key("kernel", 42, 1.5000001, true),
        key("kernel", 42, 1.5, false),
    };
    EXPECT_EQ(keys.size(), 5u); // Any field change -> new key.
}

TEST(RuntimeDigest, AdjacentFieldsCannotAlias)
{
    // Length prefixing: "ab"+"c" must differ from "a"+"bc".
    EXPECT_NE(Digest().add("ab").add("c").hex(),
              Digest().add("a").add("bc").hex());
    // Field boundaries: (1, 256) vs (256, 1).
    EXPECT_NE(Digest().add(uint64_t{1}).add(uint64_t{256}).hex(),
              Digest().add(uint64_t{256}).add(uint64_t{1}).hex());
}

TEST(RuntimeDigest, DoubleUsesBitPattern)
{
    EXPECT_NE(Digest().add(0.0).hex(), Digest().add(-0.0).hex());
}

// ---------------------------------------------------------------------
// ArtifactCache

TEST(RuntimeArtifactCache, MemoryRoundTripAndStats)
{
    ArtifactCache cache;
    EXPECT_FALSE(cache.get("k1").has_value());
    cache.put("k1", "value-1");
    auto hit = cache.get("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "value-1");

    auto stats = cache.stats();
    EXPECT_EQ(stats.mem_hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.puts, 1u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(RuntimeArtifactCache, DiskTierSurvivesProcessRestart)
{
    const std::string dir =
        "/tmp/pibe_test_cache_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    {
        ArtifactCache producer;
        producer.setDiskDir(dir);
        producer.put("deadbeef", "artifact bytes\nline 2\n");
    }
    {
        // Fresh instance = empty memory tier; must hit disk.
        ArtifactCache consumer;
        consumer.setDiskDir(dir);
        auto hit = consumer.get("deadbeef");
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(*hit, "artifact bytes\nline 2\n");
        EXPECT_EQ(consumer.stats().disk_hits, 1u);
        // Promoted to memory: second lookup is a memory hit.
        consumer.get("deadbeef");
        EXPECT_EQ(consumer.stats().mem_hits, 1u);
        EXPECT_FALSE(consumer.get("unknown-key").has_value());
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Engine determinism: parallel + cached == serial, byte for byte.

core::ExperimentPlan
tinyPlan()
{
    core::ExperimentPlan plan;
    plan.kernel.num_drivers = 6;
    plan.profile_base_iters = 2;
    plan.measure.warmup_iters = 5;
    plan.measure.measure_iters = 20;
    plan.addImage("base", core::OptConfig::none(),
                  harden::DefenseConfig::none());
    plan.addImage("hard", core::OptConfig::icpOnly(0.99),
                  harden::DefenseConfig::retpolinesOnly());
    for (const char* image : {"base", "hard"}) {
        plan.measureOn(image, "null");
        plan.measureOn(image, "read");
    }
    return plan;
}

/** Exact dump: doubles as bit patterns, so == means bit-identical. */
std::string
dumpResults(const core::ExperimentResults& results)
{
    std::ostringstream os;
    for (const auto& [image, runs] : results.measurements) {
        for (const auto& [wl, m] : runs) {
            os << image << "/" << wl << " "
               << std::bit_cast<uint64_t>(m.latency_us) << " "
               << std::bit_cast<uint64_t>(m.ops_per_sec) << " "
               << m.stats.cycles << " " << m.stats.instructions << "\n";
        }
    }
    return os.str();
}

TEST(RuntimeEngine, ParallelCachedBitIdenticalToSerial)
{
    const core::ExperimentPlan plan = tinyPlan();

    core::EngineOptions serial;
    serial.jobs = 1;
    serial.use_cache = false;
    const std::string golden = dumpResults(runExperiments(plan, serial));

    core::EngineOptions parallel;
    parallel.jobs = 4;
    parallel.use_cache = true;
    auto par = runExperiments(plan, parallel);
    EXPECT_EQ(dumpResults(par), golden);
    EXPECT_EQ(par.jobs.size(), 2u + plan.images.size() + plan.runs.size());
}

TEST(RuntimeEngine, WarmDiskCacheReproducesColdRun)
{
    const std::string dir =
        "/tmp/pibe_test_engine_cache_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    const core::ExperimentPlan plan = tinyPlan();

    core::EngineOptions opts;
    opts.jobs = 2;
    opts.cache_dir = dir;

    auto cold = runExperiments(plan, opts);
    EXPECT_EQ(cold.cache.hits(), 0u);
    EXPECT_GT(cold.cache.puts, 0u);

    auto warm = runExperiments(plan, opts);
    EXPECT_EQ(dumpResults(warm), dumpResults(cold));
    // Every stage memoized: kernel, profile, images, measurements.
    EXPECT_EQ(warm.cache.hits(),
              2u + plan.images.size() + plan.runs.size());
    EXPECT_EQ(warm.cache.misses, 0u);
    std::filesystem::remove_all(dir);
}

TEST(RuntimeEngine, CacheKeyChangesWithAnyConfigField)
{
    // Re-measuring with a different measure config must not reuse the
    // cached measurement (the run count changes the cycle totals).
    const std::string dir =
        "/tmp/pibe_test_engine_keys_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);

    core::EngineOptions opts;
    opts.jobs = 2;
    opts.cache_dir = dir;

    core::ExperimentPlan plan = tinyPlan();
    auto first = runExperiments(plan, opts);

    core::ExperimentPlan changed = tinyPlan();
    changed.measure.measure_iters += 1;
    auto second = runExperiments(changed, opts);
    // Kernel/profile/images hit; all four measurements re-run.
    EXPECT_EQ(second.cache.misses,
              static_cast<uint64_t>(changed.runs.size()));
    EXPECT_NE(dumpResults(second), dumpResults(first));
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace pibe
