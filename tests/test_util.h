/**
 * @file
 * Shared helpers for the PIBE test suite: tiny-module construction,
 * execution shorthands, and a seeded random-module generator used by
 * the property-based transformation tests.
 */
#ifndef PIBE_TESTS_TEST_UTIL_H_
#define PIBE_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/builder.h"
#include "ir/module.h"
#include "ir/verifier.h"
#include "support/rng.h"
#include "uarch/simulator.h"

namespace pibe::test {

/** Result of running a module function: return value + sink hash. */
struct RunOutcome
{
    int64_t result = 0;
    uint64_t sink_hash = 0;

    bool
    operator==(const RunOutcome& other) const
    {
        return result == other.result && sink_hash == other.sink_hash;
    }
};

/** Execute `f(args)` on a fresh simulator (timing off). */
inline RunOutcome
runFunction(const ir::Module& module, ir::FuncId f,
            const std::vector<int64_t>& args)
{
    uarch::Simulator sim(module);
    sim.setTimingEnabled(false);
    RunOutcome out;
    out.result = sim.run(f, args);
    out.sink_hash = sim.sinkHash();
    return out;
}

/** Execute a batch of calls on one simulator (state persists). */
inline std::vector<RunOutcome>
runScript(const ir::Module& module, ir::FuncId f,
          const std::vector<std::vector<int64_t>>& calls)
{
    uarch::Simulator sim(module);
    sim.setTimingEnabled(false);
    std::vector<RunOutcome> outs;
    for (const auto& args : calls)
        outs.push_back({sim.run(f, args), sim.sinkHash()});
    return outs;
}

/** True if the module verifies cleanly. */
inline bool
verifies(const ir::Module& module)
{
    return ir::verifyModule(module).empty();
}

/** Configuration of the random module generator. */
struct GenConfig
{
    uint64_t seed = 1;
    uint32_t num_leaves = 4;  ///< Pure-arithmetic leaf functions.
    uint32_t num_mids = 5;    ///< Branchy functions calling leaves/mids.
    uint32_t max_blocks = 5;  ///< Blocks per mid function.
    bool with_icalls = true;  ///< Emit indirect calls through a table.
};

/**
 * Generate a random, valid, always-terminating module.
 *
 * Control flow is forward-only (branch targets always have higher
 * block ids), so every run terminates. The entry point is the last
 * function, named "main", taking two parameters. When `with_icalls`
 * is set, a global "vtable" holds leaf addresses and mid functions
 * occasionally dispatch through it.
 */
inline ir::Module
generateModule(const GenConfig& cfg)
{
    using ir::BinKind;
    Rng rng(cfg.seed);
    ir::Module m;

    std::vector<ir::FuncId> leaves;
    for (uint32_t i = 0; i < cfg.num_leaves; ++i) {
        ir::FuncId f =
            m.addFunction("leaf" + std::to_string(i), 2);
        ir::FunctionBuilder b(m, f);
        ir::Reg acc = b.bin(BinKind::kXor, b.param(0), b.param(1));
        const uint32_t ops = 2 + static_cast<uint32_t>(rng.below(6));
        for (uint32_t o = 0; o < ops; ++o) {
            static const BinKind kKinds[] = {
                BinKind::kAdd, BinKind::kSub, BinKind::kMul,
                BinKind::kAnd, BinKind::kOr,  BinKind::kXor,
            };
            acc = b.binImm(kKinds[rng.below(6)], acc,
                           static_cast<int64_t>(rng.below(1000) + 1));
        }
        if (rng.chance(0.5))
            b.sink(acc);
        b.ret(acc);
        leaves.push_back(f);
    }

    ir::GlobalId vtable = 0;
    if (cfg.with_icalls) {
        std::vector<int64_t> init;
        for (ir::FuncId f : leaves)
            init.push_back(ir::funcAddrValue(f));
        vtable = m.addGlobal("vtable", std::move(init));
    }

    std::vector<ir::FuncId> callable = leaves;
    for (uint32_t i = 0; i < cfg.num_mids; ++i) {
        const bool is_main = (i + 1 == cfg.num_mids);
        ir::FuncId f = m.addFunction(
            is_main ? "main" : "mid" + std::to_string(i), 2);
        ir::FunctionBuilder b(m, f);
        const uint32_t nblocks =
            2 + static_cast<uint32_t>(rng.below(cfg.max_blocks - 1));
        std::vector<ir::BlockId> blocks{0};
        for (uint32_t bb = 1; bb < nblocks; ++bb)
            blocks.push_back(b.newBlock());

        std::vector<ir::Reg> pool{b.param(0), b.param(1)};
        for (uint32_t bb = 0; bb < nblocks; ++bb) {
            b.setBlock(blocks[bb]);
            const uint32_t ops = 1 + static_cast<uint32_t>(rng.below(4));
            for (uint32_t o = 0; o < ops; ++o) {
                ir::Reg a = pool[rng.below(pool.size())];
                ir::Reg c = pool[rng.below(pool.size())];
                static const BinKind kKinds[] = {
                    BinKind::kAdd, BinKind::kSub, BinKind::kMul,
                    BinKind::kAnd, BinKind::kXor, BinKind::kLt,
                };
                pool.push_back(b.bin(kKinds[rng.below(6)], a, c));
            }
            if (rng.chance(0.7)) {
                ir::FuncId callee = callable[rng.below(callable.size())];
                ir::Reg r = b.call(
                    callee, {pool[rng.below(pool.size())],
                             pool[rng.below(pool.size())]});
                pool.push_back(r);
            }
            if (cfg.with_icalls && rng.chance(0.4)) {
                ir::Reg idx = b.binImm(
                    BinKind::kAnd, pool[rng.below(pool.size())],
                    static_cast<int64_t>(leaves.size() - 1));
                ir::Reg target = b.load(vtable, idx, 0);
                ir::Reg r =
                    b.icall(target, {pool[rng.below(pool.size())],
                                     pool[rng.below(pool.size())]});
                pool.push_back(r);
            }
            if (rng.chance(0.4))
                b.sink(pool[rng.below(pool.size())]);

            if (bb + 1 == nblocks) {
                b.ret(pool[rng.below(pool.size())]);
            } else if (bb + 2 < nblocks && rng.chance(0.5)) {
                // Forward conditional branch (always terminating).
                uint32_t t = bb + 1 +
                             static_cast<uint32_t>(
                                 rng.below(nblocks - bb - 1));
                ir::Reg cond = pool[rng.below(pool.size())];
                b.condBr(cond, blocks[bb + 1], blocks[t]);
            } else {
                b.br(blocks[bb + 1]);
            }
        }
        callable.push_back(f);
    }
    return m;
}

/** The generator's entry point id ("main"). */
inline ir::FuncId
generatedMain(const ir::Module& m)
{
    return m.findFunction("main");
}

/** A spread of interesting argument pairs for generated modules. */
inline std::vector<std::vector<int64_t>>
argMatrix()
{
    return {{0, 0},   {1, 1},    {7, 3},   {-5, 9},
            {100, 2}, {255, 64}, {-1, -1}, {1 << 20, 3}};
}

} // namespace pibe::test

#endif // PIBE_TESTS_TEST_UTIL_H_
