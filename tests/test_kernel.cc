/** @file Functional tests for the synthetic kernel. */
#include <gtest/gtest.h>

#include "analysis/layout.h"
#include "ir/verifier.h"
#include "kernel/kernel.h"
#include "uarch/simulator.h"
#include "workload/workload.h"

namespace pibe {
namespace {

using kernel::KernelConfig;
using kernel::KernelImage;
using kernel::KernelLayout;
namespace sysno = kernel::sysno;
namespace proto = kernel::proto;

/** Small kernel configuration to keep unit tests fast. */
KernelConfig
testConfig()
{
    KernelConfig cfg;
    cfg.num_drivers = 8;
    return cfg;
}

class KernelTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        image_ = new KernelImage(kernel::buildKernel(testConfig()));
    }

    static void
    TearDownTestSuite()
    {
        delete image_;
        image_ = nullptr;
    }

    void
    SetUp() override
    {
        sim_ = std::make_unique<uarch::Simulator>(image_->module);
        sim_->setTimingEnabled(false);
        handle_ = std::make_unique<workload::KernelHandle>(
            *sim_, image_->info);
        handle_->boot();
    }

    int64_t
    sys(int64_t nr, int64_t a0 = 0, int64_t a1 = 0, int64_t a2 = 0)
    {
        return handle_->syscall(nr, a0, a1, a2);
    }

    int64_t
    user(int64_t off)
    {
        return sim_->readGlobal(image_->info.kmem,
                                KernelLayout::kUserBase + off);
    }

    void
    setUser(int64_t off, int64_t v)
    {
        sim_->writeGlobal(image_->info.kmem,
                          KernelLayout::kUserBase + off, v);
    }

    static KernelImage* image_;
    std::unique_ptr<uarch::Simulator> sim_;
    std::unique_ptr<workload::KernelHandle> handle_;
};

KernelImage* KernelTest::image_ = nullptr;

TEST_F(KernelTest, ModuleVerifies)
{
    EXPECT_TRUE(ir::verifyModule(image_->module).empty());
}

TEST_F(KernelTest, BuildIsDeterministic)
{
    KernelImage a = kernel::buildKernel(testConfig());
    KernelImage b = kernel::buildKernel(testConfig());
    EXPECT_EQ(a.module.numFunctions(), b.module.numFunctions());
    EXPECT_EQ(a.module.siteIdBound(), b.module.siteIdBound());
    EXPECT_EQ(analysis::CodeLayout(a.module).imageSize(),
              analysis::CodeLayout(b.module).imageSize());
}

TEST_F(KernelTest, NullSyscallReturnsPid)
{
    EXPECT_EQ(sys(sysno::kNull), 1); // init task pid
}

TEST_F(KernelTest, GetpidMatchesNull)
{
    EXPECT_EQ(sys(sysno::kGetpid), sys(sysno::kNull));
}

TEST_F(KernelTest, UnknownSyscallReturnsMinusOne)
{
    EXPECT_EQ(sys(sysno::kCount + 3), -1);
}

TEST_F(KernelTest, OpenValidPathYieldsFd)
{
    int64_t fd = sys(sysno::kOpen, workload::KernelHandle::pathHash(0));
    EXPECT_GE(fd, 3); // 0-2 reserved
    EXPECT_EQ(sys(sysno::kClose, fd), 0);
}

TEST_F(KernelTest, OpenBadPathFails)
{
    EXPECT_EQ(sys(sysno::kOpen, 987654321), -1);
}

TEST_F(KernelTest, FdTableExhaustionAndRecovery)
{
    std::vector<int64_t> fds;
    while (true) {
        int64_t fd =
            sys(sysno::kOpen, workload::KernelHandle::pathHash(1));
        if (fd < 0)
            break;
        fds.push_back(fd);
        ASSERT_LE(fds.size(), 70u); // must exhaust at some point
    }
    EXPECT_GE(fds.size(), 32u);
    for (int64_t fd : fds)
        EXPECT_EQ(sys(sysno::kClose, fd), 0);
    EXPECT_GE(sys(sysno::kOpen, workload::KernelHandle::pathHash(1)), 3);
}

TEST_F(KernelTest, WriteThenReadRoundTripsData)
{
    int64_t fd = sys(sysno::kOpen, workload::KernelHandle::pathHash(2));
    ASSERT_GE(fd, 0);
    // Place a recognizable pattern in the user buffer and write it.
    for (int64_t i = 0; i < 8; ++i)
        setUser(i, 7000 + i);
    EXPECT_EQ(sys(sysno::kWrite, fd, 0, 8), 8);
    // Rewind and read into a different user window.
    EXPECT_EQ(sys(sysno::kLseek, fd, 0), 0);
    EXPECT_EQ(sys(sysno::kRead, fd, 64, 8), 8);
    for (int64_t i = 0; i < 8; ++i)
        EXPECT_EQ(user(64 + i), 7000 + i) << "word " << i;
}

TEST_F(KernelTest, ReadOnBadFdFails)
{
    EXPECT_EQ(sys(sysno::kRead, 55, 0, 4), -1);
}

TEST_F(KernelTest, StatAndFstat)
{
    EXPECT_GE(sys(sysno::kStat, workload::KernelHandle::pathHash(3), 128),
              0);
    int64_t fd = sys(sysno::kOpen, workload::KernelHandle::pathHash(3));
    EXPECT_GE(sys(sysno::kFstat, fd, 160), 0);
    EXPECT_EQ(sys(sysno::kStat, 111111, 128), -1);
}

TEST_F(KernelTest, PipeRoundTripsData)
{
    int64_t pair = sys(sysno::kPipe);
    ASSERT_GE(pair, 0);
    int64_t rfd = pair & 0xffff;
    int64_t wfd = (pair >> 16) & 0xffff;
    for (int64_t i = 0; i < 4; ++i)
        setUser(i, 42 + i);
    EXPECT_EQ(sys(sysno::kWrite, wfd, 0, 4), 4);
    EXPECT_EQ(sys(sysno::kRead, rfd, 32, 4), 4);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(user(32 + i), 42 + i);
    // Draining an empty pipe reads zero words.
    EXPECT_EQ(sys(sysno::kRead, rfd, 32, 4), 0);
}

TEST_F(KernelTest, UnixSocketsDeliverData)
{
    int64_t a = sys(sysno::kSocket, proto::kUnix);
    int64_t b = sys(sysno::kSocket, proto::kUnix);
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);
    EXPECT_EQ(sys(sysno::kConnect, a, b), 0);
    for (int64_t i = 0; i < 6; ++i)
        setUser(i, 900 + i);
    EXPECT_EQ(sys(sysno::kSend, a, 0, 6), 6);
    EXPECT_EQ(sys(sysno::kRecv, b, 48, 6), 6);
    for (int64_t i = 0; i < 6; ++i)
        EXPECT_EQ(user(48 + i), 900 + i);
}

TEST_F(KernelTest, TcpDeliversThroughLoopbackStack)
{
    int64_t a = sys(sysno::kSocket, proto::kTcp);
    int64_t b = sys(sysno::kSocket, proto::kTcp);
    EXPECT_EQ(sys(sysno::kConnect, a, b), 0);
    setUser(0, 31337);
    EXPECT_EQ(sys(sysno::kSend, a, 0, 1), 1);
    EXPECT_EQ(sys(sysno::kRecv, b, 16, 1), 1);
    EXPECT_EQ(user(16), 31337);
}

TEST_F(KernelTest, TcpAcceptCreatesNewFd)
{
    int64_t listener = sys(sysno::kSocket, proto::kTcp);
    int64_t client = sys(sysno::kSocket, proto::kTcp);
    EXPECT_EQ(sys(sysno::kConnect, client, listener), 0);
    int64_t conn = sys(sysno::kAccept, listener);
    EXPECT_GE(conn, 0);
    EXPECT_NE(conn, listener);
    EXPECT_EQ(sys(sysno::kClose, conn), 0);
}

TEST_F(KernelTest, SocketTableExhaustionRecoversViaClose)
{
    std::vector<int64_t> fds;
    for (int i = 0; i < 80; ++i) {
        int64_t fd = sys(sysno::kSocket, proto::kUdp);
        if (fd < 0)
            break;
        fds.push_back(fd);
    }
    EXPECT_GE(fds.size(), 30u);
    for (int64_t fd : fds)
        sys(sysno::kClose, fd);
    EXPECT_GE(sys(sysno::kSocket, proto::kUdp), 0);
}

TEST_F(KernelTest, SelectCountsReadyFiles)
{
    // Regular files always poll ready.
    for (int64_t i = 0; i < 4; ++i) {
        int64_t fd =
            sys(sysno::kOpen, workload::KernelHandle::pathHash(4 + i));
        ASSERT_GE(fd, 0);
        setUser(200 + i, fd);
    }
    EXPECT_EQ(sys(sysno::kSelect, 4, 200), 4);
}

TEST_F(KernelTest, SelectOnIdleSocketsIsZero)
{
    int64_t s = sys(sysno::kSocket, proto::kTcp);
    setUser(210, s);
    EXPECT_EQ(sys(sysno::kSelect, 1, 210), 0); // nothing queued
}

TEST_F(KernelTest, ForkReturnsFreshPidAndExitReaps)
{
    int64_t pid1 = sys(sysno::kFork);
    EXPECT_GE(pid1, 2);
    int64_t pid2 = sys(sysno::kFork);
    EXPECT_NE(pid1, pid2);
    EXPECT_EQ(sys(sysno::kExit, pid1), 0);
    EXPECT_EQ(sys(sysno::kExit, pid2), 0);
    EXPECT_EQ(sys(sysno::kExit, pid1), -1); // already gone
}

TEST_F(KernelTest, ExecLoadsBinary)
{
    EXPECT_EQ(sys(sysno::kExec, workload::KernelHandle::pathHash(5)), 0);
    EXPECT_EQ(sys(sysno::kExec, 123456789), -1); // no such path
}

TEST_F(KernelTest, MmapThenFaultThenMunmap)
{
    EXPECT_EQ(sys(sysno::kMmap, 4096, 128), 4096);
    EXPECT_EQ(sys(sysno::kPageFault, 4100), 0);
    EXPECT_EQ(sys(sysno::kPageFault, 99999), -1); // unmapped
    EXPECT_EQ(sys(sysno::kMunmap, 4096, 128), 0);
    EXPECT_EQ(sys(sysno::kPageFault, 4100), -1); // gone
}

TEST_F(KernelTest, SignalDeliveryRunsUserHandler)
{
    // Handler 1 increments user[100] on delivery.
    EXPECT_EQ(sys(sysno::kSigaction, 5, 1), 0);
    int64_t before = user(100);
    EXPECT_EQ(sys(sysno::kKill, 1, 5), 0); // signal ourselves
    EXPECT_EQ(user(100), before + 1);      // delivered at exit work
}

TEST_F(KernelTest, KillUnknownPidFails)
{
    EXPECT_EQ(sys(sysno::kKill, 5555, 5), -1);
}

TEST_F(KernelTest, YieldIsHarmless)
{
    EXPECT_EQ(sys(sysno::kYield), 0);
    EXPECT_EQ(sys(sysno::kNull), 1); // still task 0
}

TEST_F(KernelTest, BootIsIdempotent)
{
    handle_->boot();
    handle_->boot();
    EXPECT_EQ(sys(sysno::kNull), 1);
}

TEST_F(KernelTest, HasParavirtAsmCallSites)
{
    uint32_t asm_icalls = 0;
    uint32_t asm_switches = 0;
    for (const auto& f : image_->module.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.is_asm) {
                    if (inst.op == ir::Opcode::kICall)
                        ++asm_icalls;
                    if (inst.op == ir::Opcode::kSwitch)
                        ++asm_switches;
                }
            }
        }
    }
    // Paravirt hypercall sites and assembly dispatch switches exist
    // (Table 11's vulnerable forward edges).
    EXPECT_GE(asm_icalls, 4u);
    EXPECT_EQ(asm_switches, 5u);
}

TEST_F(KernelTest, HasBootSectionAndAttributeCarriers)
{
    bool boot = false, noinline_attr = false, optnone = false;
    for (const auto& f : image_->module.functions()) {
        boot |= f.hasAttr(ir::kAttrBootSection);
        noinline_attr |= f.hasAttr(ir::kAttrNoInline);
        optnone |= f.hasAttr(ir::kAttrOptNone);
    }
    EXPECT_TRUE(boot);
    EXPECT_TRUE(noinline_attr);
    EXPECT_TRUE(optnone);
}

TEST_F(KernelTest, DriverCountScalesFunctions)
{
    KernelConfig big = testConfig();
    big.num_drivers = 16;
    KernelImage bigger = kernel::buildKernel(big);
    EXPECT_GT(bigger.module.numFunctions(),
              image_->module.numFunctions());
}

TEST_F(KernelTest, SyscallTableDispatchesIndirectly)
{
    // The dispatch function must contain exactly one indirect call.
    const ir::Function& d =
        image_->module.func(image_->info.sys_dispatch);
    uint32_t icalls = 0;
    for (const auto& bb : d.blocks) {
        for (const auto& inst : bb.insts)
            icalls += (inst.op == ir::Opcode::kICall);
    }
    EXPECT_EQ(icalls, 1u);
}

} // namespace
} // namespace pibe
