/** @file Unit tests for edge profiles and profile serialization. */
#include <gtest/gtest.h>

#include "profile/edge_profile.h"
#include "profile/serialize.h"
#include "tests/test_util.h"

namespace pibe {
namespace {

using profile::EdgeProfile;

TEST(EdgeProfile, DirectCounts)
{
    EdgeProfile p;
    p.addDirect(5);
    p.addDirect(5, 9);
    EXPECT_EQ(p.directCount(5), 10u);
    EXPECT_EQ(p.directCount(6), 0u);
    EXPECT_EQ(p.totalDirectWeight(), 10u);
    EXPECT_EQ(p.numDirectSites(), 1u);
}

TEST(EdgeProfile, IndirectValueProfileSortedHottestFirst)
{
    EdgeProfile p;
    p.addIndirect(3, /*target=*/7, 10);
    p.addIndirect(3, /*target=*/9, 50);
    p.addIndirect(3, /*target=*/2, 50);
    auto targets = p.indirectTargets(3);
    ASSERT_EQ(targets.size(), 3u);
    EXPECT_EQ(targets[0].count, 50u);
    // Equal counts tie-break by target id for determinism.
    EXPECT_EQ(targets[0].target, 2u);
    EXPECT_EQ(targets[1].target, 9u);
    EXPECT_EQ(targets[2].target, 7u);
    EXPECT_EQ(p.indirectCount(3), 110u);
    EXPECT_EQ(p.totalIndirectWeight(), 110u);
}

TEST(EdgeProfile, Invocations)
{
    EdgeProfile p;
    p.addInvocation(4, 3);
    p.addInvocation(4);
    EXPECT_EQ(p.invocations(4), 4u);
    EXPECT_EQ(p.invocations(100), 0u);
}

TEST(EdgeProfile, ConsumeIndirectRemovesAndReturns)
{
    EdgeProfile p;
    p.addIndirect(1, 10, 42);
    p.addIndirect(1, 11, 7);
    EXPECT_EQ(p.consumeIndirect(1, 10), 42u);
    EXPECT_EQ(p.consumeIndirect(1, 10), 0u); // already consumed
    EXPECT_EQ(p.indirectCount(1), 7u);
    EXPECT_EQ(p.consumeIndirect(1, 11), 7u);
    EXPECT_EQ(p.numIndirectSites(), 0u); // site fully drained
}

TEST(EdgeProfile, MergeAccumulates)
{
    EdgeProfile a, b;
    a.addDirect(1, 5);
    a.addIndirect(2, 3, 4);
    a.addInvocation(0, 2);
    b.addDirect(1, 10);
    b.addDirect(9, 1);
    b.addIndirect(2, 3, 6);
    b.addInvocation(0, 8);
    a.merge(b);
    EXPECT_EQ(a.directCount(1), 15u);
    EXPECT_EQ(a.directCount(9), 1u);
    EXPECT_EQ(a.indirectCount(2), 10u);
    EXPECT_EQ(a.invocations(0), 10u);
}

TEST(Serialize, RoundTripPreservesProfile)
{
    // Build a module so targets have names.
    ir::Module m;
    ir::FuncId f = m.addFunction("foo", 0);
    ir::FuncId g = m.addFunction("bar", 0);
    {
        ir::FunctionBuilder b(m, f);
        b.ret(b.constI(0));
    }
    {
        ir::FunctionBuilder b(m, g);
        b.ret(b.constI(0));
    }

    EdgeProfile p;
    p.addDirect(10, 111);
    p.addDirect(11, 5);
    p.addIndirect(20, f, 7);
    p.addIndirect(20, g, 3);
    p.addInvocation(f, 100);

    std::string text = profile::serializeProfile(m, p);
    size_t dropped = 123;
    EdgeProfile q = profile::liftProfile(m, text, &dropped);
    EXPECT_EQ(dropped, 0u);
    EXPECT_EQ(q.directCount(10), 111u);
    EXPECT_EQ(q.directCount(11), 5u);
    EXPECT_EQ(q.indirectCount(20), 10u);
    auto targets = q.indirectTargets(20);
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0].target, f);
    EXPECT_EQ(q.invocations(f), 100u);
}

TEST(Serialize, LiftDropsUnresolvableNames)
{
    ir::Module m;
    ir::FuncId f = m.addFunction("kept", 0);
    {
        ir::FunctionBuilder b(m, f);
        b.ret(b.constI(0));
    }
    std::string text = "pibe-profile v1\n"
                       "I 1 kept 5\n"
                       "I 1 removed_function 9\n"
                       "F gone 3\n";
    size_t dropped = 0;
    EdgeProfile p = profile::liftProfile(m, text, &dropped);
    EXPECT_EQ(dropped, 2u);
    EXPECT_EQ(p.indirectCount(1), 5u);
}

TEST(SerializeDeath, BadHeader)
{
    ir::Module m;
    EXPECT_DEATH(profile::liftProfile(m, "not-a-profile\n"),
                 "bad profile header");
}

TEST(SerializeDeath, MalformedRecord)
{
    ir::Module m;
    EXPECT_DEATH(
        profile::liftProfile(m, "pibe-profile v1\nD broken\n"),
        "bad profile line");
}

TEST(Serialize, SurvivesFunctionRenumbering)
{
    // Profile collected on module A, lifted onto module B where the
    // same functions exist under different ids -- the §7 lifting
    // property that motivates symbolic target names.
    ir::Module a;
    ir::FuncId af = a.addFunction("foo", 0);
    ir::FuncId ag = a.addFunction("bar", 0);
    {
        ir::FunctionBuilder b(a, af);
        b.ret(b.constI(0));
    }
    {
        ir::FunctionBuilder b(a, ag);
        b.ret(b.constI(0));
    }
    EdgeProfile p;
    p.addIndirect(1, af, 42);
    p.addInvocation(ag, 9);
    std::string text = profile::serializeProfile(a, p);

    ir::Module bmod;
    ir::FuncId bg = bmod.addFunction("bar", 0); // swapped order
    ir::FuncId bf = bmod.addFunction("foo", 0);
    {
        ir::FunctionBuilder b(bmod, bg);
        b.ret(b.constI(0));
    }
    {
        ir::FunctionBuilder b(bmod, bf);
        b.ret(b.constI(0));
    }
    EdgeProfile q = profile::liftProfile(bmod, text);
    auto targets = q.indirectTargets(1);
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0].target, bf); // resolved by name, not id
    EXPECT_EQ(q.invocations(bg), 9u);
}

} // namespace
} // namespace pibe
