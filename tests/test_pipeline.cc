/** @file Integration tests: the full PIBE pipeline on the kernel. */
#include <gtest/gtest.h>

#include "analysis/layout.h"
#include "ir/verifier.h"
#include "kernel/kernel.h"
#include "pibe/experiment.h"
#include "pibe/pipeline.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace pibe {
namespace {

namespace sysno = kernel::sysno;
namespace proto = kernel::proto;
using core::BuildReport;
using core::InlinerKind;
using core::OptConfig;
using harden::DefenseConfig;

kernel::KernelConfig
testConfig()
{
    kernel::KernelConfig cfg;
    cfg.num_drivers = 8;
    return cfg;
}

/**
 * A fixed syscall script covering every subsystem; used to compare
 * behaviour across images. Returns (return values..., final sink hash).
 */
std::vector<int64_t>
runKernelScript(const ir::Module& image, const kernel::KernelInfo& info)
{
    uarch::Simulator sim(image);
    sim.setTimingEnabled(false);
    workload::KernelHandle k(sim, info);
    k.boot();
    std::vector<int64_t> out;
    auto record = [&](int64_t v) { out.push_back(v); };

    record(k.syscall(sysno::kNull));
    int64_t fd =
        k.syscall(sysno::kOpen, workload::KernelHandle::pathHash(0));
    record(fd);
    for (int64_t i = 0; i < 6; ++i) {
        sim.writeGlobal(info.kmem,
                        kernel::KernelLayout::kUserBase + i, 500 + i);
    }
    record(k.syscall(sysno::kWrite, fd, 0, 6));
    record(k.syscall(sysno::kLseek, fd, 0));
    record(k.syscall(sysno::kRead, fd, 32, 6));
    for (int64_t i = 0; i < 6; ++i) {
        record(sim.readGlobal(info.kmem,
                              kernel::KernelLayout::kUserBase + 32 + i));
    }
    record(k.syscall(sysno::kStat,
                     workload::KernelHandle::pathHash(1), 64));
    int64_t s1 = k.syscall(sysno::kSocket, proto::kTcp);
    int64_t s2 = k.syscall(sysno::kSocket, proto::kTcp);
    record(k.syscall(sysno::kConnect, s1, s2));
    record(k.syscall(sysno::kSend, s1, 0, 4));
    record(k.syscall(sysno::kRecv, s2, 48, 4));
    int64_t pid = k.syscall(sysno::kFork);
    record(pid);
    record(k.syscall(sysno::kExec,
                     workload::KernelHandle::pathHash(2)));
    record(k.syscall(sysno::kExit, pid));
    record(k.syscall(sysno::kMmap, 4096, 64));
    record(k.syscall(sysno::kPageFault, 4100));
    record(k.syscall(sysno::kSigaction, 5, 1));
    record(k.syscall(sysno::kKill, 1, 5));
    record(k.syscall(sysno::kSelect, 2, 200));
    record(k.syscall(sysno::kClose, fd));
    record(static_cast<int64_t>(sim.sinkHash()));
    return out;
}

class PipelineTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        image_ = new kernel::KernelImage(
            kernel::buildKernel(testConfig()));
        auto suite = workload::makeLmbenchSuite();
        profile_ = new profile::EdgeProfile(core::collectProfile(
            image_->module, image_->info, suite, 30));
        reference_ = new std::vector<int64_t>(
            runKernelScript(image_->module, image_->info));
    }

    static void
    TearDownTestSuite()
    {
        delete image_;
        delete profile_;
        delete reference_;
        image_ = nullptr;
        profile_ = nullptr;
        reference_ = nullptr;
    }

    static kernel::KernelImage* image_;
    static profile::EdgeProfile* profile_;
    static std::vector<int64_t>* reference_;
};

kernel::KernelImage* PipelineTest::image_ = nullptr;
profile::EdgeProfile* PipelineTest::profile_ = nullptr;
std::vector<int64_t>* PipelineTest::reference_ = nullptr;

TEST_F(PipelineTest, BaselineScriptIsDeterministic)
{
    EXPECT_EQ(runKernelScript(image_->module, image_->info),
              *reference_);
}

TEST_F(PipelineTest, FullPipelinePreservesKernelBehaviour)
{
    BuildReport report;
    ir::Module optimized =
        core::buildImage(image_->module, *profile_,
                         OptConfig::icpAndInline(0.999),
                         DefenseConfig::all(), &report);
    EXPECT_TRUE(ir::verifyModule(optimized).empty());
    EXPECT_EQ(runKernelScript(optimized, image_->info), *reference_);
    EXPECT_GT(report.inlining.inlined_sites, 0u);
    EXPECT_GT(report.icp.promoted_sites, 0u);
}

TEST_F(PipelineTest, TotalPromotionElidesIcallsAndPreservesBehaviour)
{
    OptConfig cfg = OptConfig::icpAndInline(0.999);
    cfg.icp_total_promotion = true;
    // The kernel's big op tables exceed the default bound of 8; raise
    // it so the medium-sized driver/protocol tables qualify.
    cfg.icp_total_promotion_max_targets = 30;
    BuildReport report;
    ir::Module optimized =
        core::buildImage(image_->module, *profile_, cfg,
                         DefenseConfig::all(), &report);
    EXPECT_TRUE(ir::verifyModule(optimized).empty());
    EXPECT_GT(report.icp.total_safe_sites, 0u);
    EXPECT_GT(report.icp.fallbacks_dropped, 0u);
    // Table 6/11 accounting: elided sites flow into the coverage row.
    EXPECT_EQ(report.coverage.elided_icalls,
              report.icp.fallbacks_dropped);
    EXPECT_EQ(runKernelScript(optimized, image_->info), *reference_);
}

TEST_F(PipelineTest, PerSiteCapCountsResidualSurface)
{
    OptConfig cfg = OptConfig::icpOnly(0.99999);
    cfg.icp_max_targets = 1;
    BuildReport report;
    ir::Module optimized =
        core::buildImage(image_->module, *profile_, cfg,
                         DefenseConfig::retpolinesOnly(), &report);
    EXPECT_GT(report.icp.capped_sites, 0u);
    // A capped site's fallback icall is residual attack surface; the
    // coverage report must count it.
    EXPECT_EQ(report.coverage.capped_residual_icalls,
              report.icp.capped_sites);
    EXPECT_EQ(runKernelScript(optimized, image_->info), *reference_);
}

TEST_F(PipelineTest, DefaultInlinerAlsoPreservesBehaviour)
{
    OptConfig cfg = OptConfig::icpAndInline(0.999);
    cfg.inliner = InlinerKind::kDefaultLlvm;
    ir::Module optimized = core::buildImage(
        image_->module, *profile_, cfg, DefenseConfig::all());
    EXPECT_EQ(runKernelScript(optimized, image_->info), *reference_);
}

TEST_F(PipelineTest, LaxHeuristicsPreserveBehaviour)
{
    ir::Module optimized = core::buildImage(
        image_->module, *profile_,
        OptConfig::icpAndInline(0.999999, /*lax=*/true),
        DefenseConfig::all());
    EXPECT_EQ(runKernelScript(optimized, image_->info), *reference_);
}

TEST_F(PipelineTest, DefenseOverheadOrdering)
{
    auto cycles_for = [&](const OptConfig& opt,
                          const DefenseConfig& def) {
        ir::Module img =
            core::buildImage(image_->module, *profile_, opt, def);
        auto wl = workload::makeLmbenchTest("read");
        core::MeasureConfig mc;
        mc.warmup_iters = 30;
        mc.measure_iters = 80;
        return core::measureWorkload(img, image_->info, *wl, mc)
            .latency_us;
    };
    double base = cycles_for(OptConfig::none(), DefenseConfig::none());
    double retp =
        cycles_for(OptConfig::none(), DefenseConfig::retpolinesOnly());
    double all = cycles_for(OptConfig::none(), DefenseConfig::all());
    double all_opt = cycles_for(OptConfig::icpAndInline(0.999),
                                DefenseConfig::all());
    EXPECT_LT(base, retp);
    EXPECT_LT(retp, all);
    EXPECT_LT(all_opt, all);
    // PIBE recovers most of the overhead (§8.3's headline claim).
    EXPECT_LT((all_opt - base) / base, 0.5 * (all - base) / base);
}

TEST_F(PipelineTest, IcpBudgetIsMonotoneInPromotedWeight)
{
    uint64_t prev = 0;
    for (double budget : {0.5, 0.9, 0.99, 0.99999}) {
        BuildReport report;
        core::buildImage(image_->module, *profile_,
                         OptConfig::icpOnly(budget),
                         DefenseConfig::retpolinesOnly(), &report);
        EXPECT_GE(report.icp.promoted_weight, prev);
        prev = report.icp.promoted_weight;
    }
}

TEST_F(PipelineTest, InlineBudgetIsMonotoneInEligibleWeight)
{
    uint64_t prev = 0;
    for (double budget : {0.5, 0.9, 0.99, 0.999, 0.999999}) {
        BuildReport report;
        core::buildImage(image_->module, *profile_,
                         OptConfig::icpAndInline(budget),
                         DefenseConfig::all(), &report);
        EXPECT_GE(report.inlining.eligible_weight, prev);
        prev = report.inlining.eligible_weight;
    }
}

TEST_F(PipelineTest, ImageSizeGrowsWithInlineBudget)
{
    BuildReport low, high;
    core::buildImage(image_->module, *profile_,
                     OptConfig::icpAndInline(0.9),
                     DefenseConfig::all(), &low);
    core::buildImage(image_->module, *profile_,
                     OptConfig::icpAndInline(0.999999),
                     DefenseConfig::all(), &high);
    EXPECT_GE(high.image_size, low.image_size);
    EXPECT_GT(low.image_size, low.baseline_image_size);
}

TEST_F(PipelineTest, CoverageAccountsAllReturns)
{
    BuildReport report;
    ir::Module img = core::buildImage(image_->module, *profile_,
                                      OptConfig::icpAndInline(0.999),
                                      DefenseConfig::all(), &report);
    uint32_t total_rets = 0;
    for (const auto& f : img.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts)
                total_rets += (inst.op == ir::Opcode::kRet);
        }
    }
    EXPECT_EQ(report.coverage.protected_rets +
                  report.coverage.boot_only_rets,
              total_rets);
}

TEST_F(PipelineTest, VulnerableICallsAreExactlyAsmSites)
{
    BuildReport report;
    ir::Module img = core::buildImage(image_->module, *profile_,
                                      OptConfig::icpAndInline(0.999),
                                      DefenseConfig::all(), &report);
    uint32_t asm_sites = 0;
    for (const auto& f : img.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                asm_sites += (inst.op == ir::Opcode::kICall &&
                              inst.is_asm);
            }
        }
    }
    EXPECT_EQ(report.coverage.vulnerable_icalls, asm_sites);
}

TEST_F(PipelineTest, InliningDuplicatesAsmSitesAtHigherBudgets)
{
    BuildReport none, high;
    core::buildImage(image_->module, *profile_, OptConfig::none(),
                     DefenseConfig::all(), &none);
    core::buildImage(image_->module, *profile_,
                     OptConfig::icpAndInline(0.999999),
                     DefenseConfig::all(), &high);
    // Table 11: vulnerable icall count grows with the budget because
    // inlining copies paravirt call sites.
    EXPECT_GE(high.coverage.vulnerable_icalls,
              none.coverage.vulnerable_icalls);
    // Protected icalls also grow (duplicated hardened sites).
    EXPECT_GE(high.coverage.protected_icalls,
              none.coverage.protected_icalls);
}

TEST_F(PipelineTest, JumpSwitchImageRunsAndIsFasterThanRetpolines)
{
    ir::Module retp = core::buildImage(image_->module, *profile_,
                                       OptConfig::none(),
                                       DefenseConfig::retpolinesOnly());
    ir::Module js = core::buildImage(image_->module, *profile_,
                                     OptConfig::none(),
                                     DefenseConfig::jumpSwitches());
    EXPECT_EQ(runKernelScript(js, image_->info), *reference_);
    auto wl1 = workload::makeLmbenchTest("select_tcp");
    auto wl2 = workload::makeLmbenchTest("select_tcp");
    core::MeasureConfig mc;
    mc.warmup_iters = 40;
    mc.measure_iters = 80;
    double t_retp =
        core::measureWorkload(retp, image_->info, *wl1, mc).latency_us;
    double t_js =
        core::measureWorkload(js, image_->info, *wl2, mc).latency_us;
    EXPECT_LT(t_js, t_retp); // JumpSwitches beat static retpolines...
    ir::Module icp = core::buildImage(image_->module, *profile_,
                                      OptConfig::icpOnly(0.99999),
                                      DefenseConfig::retpolinesOnly());
    auto wl3 = workload::makeLmbenchTest("select_tcp");
    double t_icp =
        core::measureWorkload(icp, image_->info, *wl3, mc).latency_us;
    EXPECT_LT(t_icp, t_retp); // ...and PIBE's static ICP beats plain
}

/** Parameterized sweep: every budget/inliner combo stays correct. */
struct SweepParam
{
    double budget;
    InlinerKind inliner;
    bool lax;
};

class PipelineSweep : public PipelineTest,
                      public ::testing::WithParamInterface<SweepParam>
{
};

TEST_P(PipelineSweep, BehaviourPreservedAcrossConfigs)
{
    const SweepParam& p = GetParam();
    OptConfig cfg;
    cfg.inline_budget = p.budget;
    cfg.inliner = p.inliner;
    cfg.lax_heuristics = p.lax;
    ir::Module img = core::buildImage(image_->module, *profile_, cfg,
                                      DefenseConfig::all());
    EXPECT_TRUE(ir::verifyModule(img).empty());
    EXPECT_EQ(runKernelScript(img, image_->info), *reference_);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, PipelineSweep,
    ::testing::Values(SweepParam{0.0, InlinerKind::kPibe, false},
                      SweepParam{0.5, InlinerKind::kPibe, false},
                      SweepParam{0.9, InlinerKind::kPibe, false},
                      SweepParam{0.99, InlinerKind::kPibe, false},
                      SweepParam{0.999, InlinerKind::kPibe, false},
                      SweepParam{0.999999, InlinerKind::kPibe, false},
                      SweepParam{0.999999, InlinerKind::kPibe, true},
                      SweepParam{0.99, InlinerKind::kDefaultLlvm, false},
                      SweepParam{0.999, InlinerKind::kDefaultLlvm,
                                 false},
                      SweepParam{0.5, InlinerKind::kNone, false}));

} // namespace
} // namespace pibe
