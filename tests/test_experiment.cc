/** @file Tests for the measurement harness (pibe::core::experiment). */
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "pibe/experiment.h"
#include "pibe/pipeline.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace pibe {
namespace {

kernel::KernelConfig
testConfig()
{
    kernel::KernelConfig cfg;
    cfg.num_drivers = 8;
    return cfg;
}

class ExperimentTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        image_ = new kernel::KernelImage(
            kernel::buildKernel(testConfig()));
    }

    static void
    TearDownTestSuite()
    {
        delete image_;
        image_ = nullptr;
    }

    static kernel::KernelImage* image_;
};

kernel::KernelImage* ExperimentTest::image_ = nullptr;

TEST_F(ExperimentTest, LatencyAndThroughputAreConsistent)
{
    auto wl = workload::makeLmbenchTest("null");
    core::MeasureConfig cfg;
    cfg.warmup_iters = 20;
    cfg.measure_iters = 60;
    auto m = core::measureWorkload(image_->module, image_->info, *wl,
                                   cfg);
    // ops/sec * latency(us) == 1e6 by construction.
    EXPECT_NEAR(m.ops_per_sec * m.latency_us, 1e6, 1.0);
}

TEST_F(ExperimentTest, MoreWorkMeansMoreLatency)
{
    core::MeasureConfig cfg;
    cfg.warmup_iters = 20;
    cfg.measure_iters = 60;
    auto null_wl = workload::makeLmbenchTest("null");
    auto fork_wl = workload::makeLmbenchTest("fork/exec");
    double null_lat = core::measureWorkload(image_->module,
                                            image_->info, *null_wl, cfg)
                          .latency_us;
    double fork_lat = core::measureWorkload(image_->module,
                                            image_->info, *fork_wl, cfg)
                          .latency_us;
    EXPECT_GT(fork_lat, 3 * null_lat);
}

TEST_F(ExperimentTest, WarmupReducesMeasuredLatency)
{
    auto wl_cold = workload::makeLmbenchTest("read");
    auto wl_warm = workload::makeLmbenchTest("read");
    core::MeasureConfig cold;
    cold.warmup_iters = 0;
    cold.measure_iters = 5;
    core::MeasureConfig warm;
    warm.warmup_iters = 200;
    warm.measure_iters = 5;
    double cold_lat = core::measureWorkload(image_->module,
                                            image_->info, *wl_cold, cold)
                          .latency_us;
    double warm_lat = core::measureWorkload(image_->module,
                                            image_->info, *wl_warm, warm)
                          .latency_us;
    EXPECT_GT(cold_lat, warm_lat); // predictors and i-cache trained
}

TEST_F(ExperimentTest, MeasureSuiteCoversAllTests)
{
    auto suite = workload::makeLmbenchSuite();
    core::MeasureConfig cfg;
    cfg.warmup_iters = 5;
    cfg.measure_iters = 10;
    auto results =
        core::measureSuite(image_->module, image_->info, suite, cfg);
    EXPECT_EQ(results.size(), suite.size());
    for (const auto& [name, m] : results) {
        EXPECT_GT(m.latency_us, 0.0) << name;
        EXPECT_GT(m.stats.instructions, 0u) << name;
    }
}

TEST_F(ExperimentTest, BuildReportFinalProfileReflectsPromotion)
{
    auto suite = workload::makeLmbenchSuite();
    auto profile =
        core::collectProfile(image_->module, image_->info, suite, 20);
    const uint64_t indirect_before = profile.totalIndirectWeight();
    core::BuildReport report;
    core::buildImage(image_->module, profile,
                     core::OptConfig::icpOnly(0.99999),
                     harden::DefenseConfig::retpolinesOnly(), &report);
    // Promotion moved weight from indirect to direct edges in the
    // working profile; the input profile is untouched.
    EXPECT_EQ(profile.totalIndirectWeight(), indirect_before);
    EXPECT_LT(report.final_profile.totalIndirectWeight(),
              indirect_before);
    EXPECT_GT(report.final_profile.totalDirectWeight(),
              profile.totalDirectWeight());
}

TEST_F(ExperimentTest, BuildImageDoesNotMutateInputModule)
{
    auto suite = workload::makeLmbenchSuite();
    auto profile =
        core::collectProfile(image_->module, image_->info, suite, 15);
    const size_t funcs = image_->module.numFunctions();
    const ir::SiteId bound = image_->module.siteIdBound();
    core::buildImage(image_->module, profile,
                     core::OptConfig::icpAndInline(0.999),
                     harden::DefenseConfig::all());
    EXPECT_EQ(image_->module.numFunctions(), funcs);
    EXPECT_EQ(image_->module.siteIdBound(), bound);
    // And the original still runs unhardened.
    uarch::Simulator sim(image_->module);
    sim.setTimingEnabled(false);
    workload::KernelHandle handle(sim, image_->info);
    handle.boot();
    EXPECT_EQ(handle.syscall(kernel::sysno::kNull), 1);
}

} // namespace
} // namespace pibe
