/** @file Tests for the PIR simulator: semantics and timing behaviour. */
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "tests/test_util.h"
#include "uarch/simulator.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;
using uarch::Simulator;

/** f(a, b) = a <op> b. */
ir::FuncId
binFunc(Module& m, BinKind kind)
{
    ir::FuncId f = m.addFunction("f", 2);
    FunctionBuilder b(m, f);
    b.ret(b.bin(kind, b.param(0), b.param(1)));
    return f;
}

struct BinCase
{
    BinKind kind;
    int64_t a, b, expected;
};

class BinOpSemantics : public ::testing::TestWithParam<BinCase>
{
};

TEST_P(BinOpSemantics, MatchesReference)
{
    const BinCase& c = GetParam();
    Module m;
    ir::FuncId f = binFunc(m, c.kind);
    EXPECT_EQ(test::runFunction(m, f, {c.a, c.b}).result, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinOpSemantics,
    ::testing::Values(
        BinCase{BinKind::kAdd, 2, 3, 5},
        BinCase{BinKind::kAdd, INT64_MAX, 1, INT64_MIN}, // wraps
        BinCase{BinKind::kSub, 2, 5, -3},
        BinCase{BinKind::kMul, -4, 6, -24},
        BinCase{BinKind::kDiv, 7, 2, 3},
        BinCase{BinKind::kRem, 7, 3, 1},
        BinCase{BinKind::kAnd, 0b1100, 0b1010, 0b1000},
        BinCase{BinKind::kOr, 0b1100, 0b1010, 0b1110},
        BinCase{BinKind::kXor, 0b1100, 0b1010, 0b0110},
        BinCase{BinKind::kShl, 3, 4, 48},
        BinCase{BinKind::kShr, 48, 4, 3},
        BinCase{BinKind::kShl, 1, 65, 2}, // shift amount masked to 1
        BinCase{BinKind::kEq, 5, 5, 1}, BinCase{BinKind::kEq, 5, 6, 0},
        BinCase{BinKind::kNe, 5, 6, 1}, BinCase{BinKind::kLt, -2, 1, 1},
        BinCase{BinKind::kLe, 3, 3, 1}, BinCase{BinKind::kGt, 3, 3, 0},
        BinCase{BinKind::kGe, 4, 3, 1}));

TEST(Simulator, GlobalLoadStore)
{
    Module m;
    m.addGlobal("g", {10, 20, 30});
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg v = b.load(0, b.param(0), 1); // g[i + 1]
    ir::Reg doubled = b.binImm(BinKind::kMul, v, 2);
    b.store(0, b.param(0), doubled, 1);
    b.ret(doubled);
    Simulator sim(m);
    EXPECT_EQ(sim.run(f, {0}), 40);
    EXPECT_EQ(sim.run(f, {0}), 80); // state persists across calls
    sim.resetMemory();
    EXPECT_EQ(sim.run(f, {0}), 40);
}

TEST(SimulatorDeath, OutOfBoundsLoad)
{
    Module m;
    m.addGlobal("g", {1});
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg v = b.load(0, b.param(0));
    b.ret(v);
    Simulator sim(m);
    EXPECT_DEATH(sim.run(f, {5}), "out of bounds");
    Simulator sim2(m);
    EXPECT_DEATH(sim2.run(f, {-1}), "out of bounds");
}

TEST(SimulatorDeath, DivisionByZero)
{
    Module m;
    ir::FuncId f = binFunc(m, BinKind::kDiv);
    Simulator sim(m);
    EXPECT_DEATH(sim.run(f, {4, 0}), "division by zero");
}

TEST(SimulatorDeath, ICallThroughNonFunction)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg r = b.icall(b.param(0), {});
    b.ret(r);
    Simulator sim(m);
    EXPECT_DEATH(sim.run(f, {1234}), "non-function");
}

TEST(SimulatorDeath, ICallArityMismatch)
{
    Module m;
    ir::FuncId two = m.addFunction("two_params", 2);
    {
        FunctionBuilder b(m, two);
        b.ret(b.param(0));
    }
    ir::FuncId f = m.addFunction("f", 0);
    FunctionBuilder b(m, f);
    ir::Reg t = b.funcAddr(two);
    ir::Reg r = b.icall(t, {}); // no args for a 2-param target
    b.ret(r);
    Simulator sim(m);
    EXPECT_DEATH(sim.run(f, {}), "arity");
}

TEST(Simulator, IndirectCallDispatch)
{
    Module m;
    ir::FuncId add1 = m.addFunction("add1", 1);
    {
        FunctionBuilder b(m, add1);
        b.ret(b.binImm(BinKind::kAdd, b.param(0), 1));
    }
    ir::FuncId neg = m.addFunction("neg", 1);
    {
        FunctionBuilder b(m, neg);
        ir::Reg z = b.constI(0);
        b.ret(b.bin(BinKind::kSub, z, b.param(0)));
    }
    m.addGlobal("table",
                {ir::funcAddrValue(add1), ir::funcAddrValue(neg)});
    ir::FuncId f = m.addFunction("f", 2);
    FunctionBuilder b(m, f);
    ir::Reg t = b.load(0, b.param(0));
    ir::Reg r = b.icall(t, {b.param(1)});
    b.ret(r);
    EXPECT_EQ(test::runFunction(m, f, {0, 10}).result, 11);
    EXPECT_EQ(test::runFunction(m, f, {1, 10}).result, -10);
}

TEST(Simulator, SinkHashObservesValuesInOrder)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 2);
    FunctionBuilder b(m, f);
    b.sink(b.param(0));
    b.sink(b.param(1));
    b.ret(b.constI(0));
    auto ab = test::runFunction(m, f, {1, 2});
    auto ba = test::runFunction(m, f, {2, 1});
    EXPECT_NE(ab.sink_hash, ba.sink_hash); // order matters
    auto ab2 = test::runFunction(m, f, {1, 2});
    EXPECT_EQ(ab.sink_hash, ab2.sink_hash); // deterministic
}

TEST(Simulator, ExternalDeclarationReturnsZero)
{
    Module m;
    ir::FuncId ext = m.addFunction("ext", 1, ir::kAttrExternal);
    ir::FuncId f = m.addFunction("f", 0);
    FunctionBuilder b(m, f);
    ir::Reg r = b.call(ext, {b.constI(9)});
    b.ret(b.binImm(BinKind::kAdd, r, 5));
    EXPECT_EQ(test::runFunction(m, f, {}).result, 5);
}

TEST(Simulator, StatsCountEvents)
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 0);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.constI(1));
    }
    ir::FuncId f = m.addFunction("f", 0);
    FunctionBuilder b(m, f);
    ir::Reg r1 = b.call(leaf);
    ir::Reg t = b.funcAddr(leaf);
    ir::Reg r2 = b.icall(t, {});
    b.ret(b.bin(BinKind::kAdd, r1, r2));
    Simulator sim(m);
    sim.run(f, {});
    const auto& stats = sim.stats();
    EXPECT_EQ(stats.direct_calls, 1u);
    EXPECT_EQ(stats.indirect_calls, 1u);
    EXPECT_EQ(stats.returns, 3u); // two leaf returns + f's
    EXPECT_EQ(stats.max_call_depth, 2u);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.instructions, 0u);
}

TEST(Simulator, TimingDisabledAccumulatesNoCycles)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    FunctionBuilder b(m, f);
    b.ret(b.constI(1));
    Simulator sim(m);
    sim.setTimingEnabled(false);
    sim.run(f, {});
    EXPECT_EQ(sim.stats().cycles, 0u);
    EXPECT_GT(sim.stats().instructions, 0u);
}

/** One hot loop of indirect calls; returns cycles per config. */
uint64_t
cyclesWithScheme(ir::FwdScheme scheme)
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 1);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.param(0));
    }
    m.addGlobal("t", {ir::funcAddrValue(leaf)});
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg i = b.newReg();
    b.setRegConst(i, 0);
    ir::Reg one = b.constI(1);
    ir::Reg z = b.constI(0);
    ir::BlockId head = b.newBlock();
    ir::BlockId body = b.newBlock();
    ir::BlockId done = b.newBlock();
    b.br(head);
    b.setBlock(head);
    ir::Reg c = b.bin(BinKind::kLt, i, b.param(0));
    b.condBr(c, body, done);
    b.setBlock(body);
    ir::Reg t = b.load(0, z);
    ir::Reg r = b.icall(t, {i});
    b.sink(r);
    b.setRegBin(i, BinKind::kAdd, i, one);
    b.br(head);
    b.setBlock(done);
    b.ret(i);
    // Tag the icall with the requested scheme.
    for (auto& bb : m.func(f).blocks) {
        for (auto& inst : bb.insts) {
            if (inst.op == ir::Opcode::kICall)
                inst.fwd_scheme = scheme;
        }
    }
    Simulator sim(m);
    sim.run(f, {200});
    return sim.stats().cycles;
}

TEST(SimulatorTiming, ThunkCostOrdering)
{
    uint64_t none = cyclesWithScheme(ir::FwdScheme::kNone);
    uint64_t lvi = cyclesWithScheme(ir::FwdScheme::kLviCfi);
    uint64_t retp = cyclesWithScheme(ir::FwdScheme::kRetpoline);
    uint64_t fenced = cyclesWithScheme(ir::FwdScheme::kFencedRetpoline);
    EXPECT_LT(none, lvi);
    EXPECT_LT(lvi, retp);
    EXPECT_LT(retp, fenced);
    // Calibration: retpoline adds ~21 cycles per icall over predicted.
    EXPECT_NEAR(static_cast<double>(retp - none) / 200.0, 19.0, 3.0);
}

TEST(SimulatorTiming, ReturnSchemeOrdering)
{
    auto run_ret = [](ir::RetScheme scheme) {
        Module m;
        ir::FuncId leaf = m.addFunction("leaf", 1);
        {
            FunctionBuilder b(m, leaf);
            b.ret(b.param(0));
        }
        ir::FuncId f = m.addFunction("f", 1);
        FunctionBuilder b(m, f);
        ir::Reg acc = b.newReg();
        b.setRegConst(acc, 0);
        for (int k = 0; k < 100; ++k) {
            ir::Reg r = b.call(leaf, {acc});
            b.setReg(acc, r);
        }
        b.ret(acc);
        for (auto& bb : m.func(leaf).blocks) {
            for (auto& inst : bb.insts) {
                if (inst.op == ir::Opcode::kRet)
                    inst.ret_scheme = scheme;
            }
        }
        Simulator sim(m);
        sim.run(f, {0});
        return sim.stats().cycles;
    };
    uint64_t plain = run_ret(ir::RetScheme::kNone);
    uint64_t lvi = run_ret(ir::RetScheme::kLviRet);
    uint64_t rr = run_ret(ir::RetScheme::kReturnRetpoline);
    uint64_t fenced = run_ret(ir::RetScheme::kFencedRet);
    EXPECT_LT(plain, lvi);
    EXPECT_LT(lvi, rr);
    EXPECT_LT(rr, fenced);
    EXPECT_NEAR(static_cast<double>(fenced - plain) / 100.0, 31.0, 3.0);
}

TEST(SimulatorTiming, JumpSwitchLearnsSingleTarget)
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 1);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.param(0));
    }
    m.addGlobal("t", {ir::funcAddrValue(leaf)});
    ir::FuncId f = m.addFunction("f", 0);
    FunctionBuilder b(m, f);
    ir::Reg z = b.constI(0);
    ir::Reg t = b.load(0, z);
    ir::Reg r = b.icall(t, {z});
    b.ret(r);
    for (auto& bb : m.func(f).blocks) {
        for (auto& inst : bb.insts) {
            if (inst.op == ir::Opcode::kICall)
                inst.fwd_scheme = ir::FwdScheme::kJumpSwitch;
        }
    }
    Simulator sim(m);
    for (int i = 0; i < 100; ++i)
        sim.run(f, {});
    const auto& stats = sim.stats();
    EXPECT_EQ(stats.js_patches, 1u);  // learned once
    EXPECT_EQ(stats.js_hits, 99u);    // then always hits
    EXPECT_EQ(stats.js_misses, 0u);
    EXPECT_EQ(stats.js_learning, 0u); // single target: no relearning
}

TEST(SimulatorTiming, ICacheMissesCountedOnColdCode)
{
    test::GenConfig g;
    g.seed = 42;
    Module m = test::generateModule(g);
    Simulator sim(m);
    sim.run(test::generatedMain(m), {1, 2});
    EXPECT_GT(sim.stats().icache_misses, 0u);
    uint64_t cold = sim.stats().icache_misses;
    sim.clearStats();
    sim.run(test::generatedMain(m), {1, 2});
    EXPECT_LT(sim.stats().icache_misses, cold); // warm now
}

} // namespace
} // namespace pibe
