/** @file Tests for the hardening pass and coverage accounting. */
#include <gtest/gtest.h>

#include "harden/harden.h"
#include "ir/builder.h"
#include "opt/jump_tables.h"
#include "tests/test_util.h"

namespace pibe {
namespace {

using harden::DefenseConfig;
using ir::BinKind;
using ir::FunctionBuilder;
using ir::FwdScheme;
using ir::Module;
using ir::RetScheme;

/** Module with: icall (normal + asm), switch, rets (normal + boot). */
Module
makeSurfaceModule()
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 1);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.param(0));
    }
    ir::FuncId boot = m.addFunction("boot_init", 0,
                                    ir::kAttrBootSection);
    {
        FunctionBuilder b(m, boot);
        b.ret(b.constI(0));
    }
    ir::FuncId f = m.addFunction("hot", 1);
    {
        FunctionBuilder b(m, f);
        ir::Reg t = b.funcAddr(leaf);
        ir::Reg r1 = b.icall(t, {b.param(0)});
        ir::Reg r2 = b.icall(t, {r1}, /*is_asm=*/true);
        ir::BlockId d = b.newBlock();
        ir::BlockId c1 = b.newBlock();
        b.switchOn(r2, d, {{0, c1}});
        b.setBlock(c1);
        b.ret(b.constI(1));
        b.setBlock(d);
        b.ret(b.constI(2));
    }
    return m;
}

TEST(DefenseConfig, SchemeSelection)
{
    EXPECT_EQ(harden::forwardSchemeFor(DefenseConfig::none()),
              FwdScheme::kNone);
    EXPECT_EQ(harden::forwardSchemeFor(DefenseConfig::retpolinesOnly()),
              FwdScheme::kRetpoline);
    EXPECT_EQ(harden::forwardSchemeFor(DefenseConfig::lviOnly()),
              FwdScheme::kLviCfi);
    // Retpolines and LVI-CFI instrument the same sequence and are
    // incompatible; the combination must be the fenced retpoline.
    EXPECT_EQ(harden::forwardSchemeFor(DefenseConfig::all()),
              FwdScheme::kFencedRetpoline);
    EXPECT_EQ(harden::forwardSchemeFor(DefenseConfig::jumpSwitches()),
              FwdScheme::kJumpSwitch);

    EXPECT_EQ(harden::returnSchemeFor(DefenseConfig::retpolinesOnly()),
              RetScheme::kNone); // retpolines do not cover returns
    EXPECT_EQ(harden::returnSchemeFor(DefenseConfig::retRetpolinesOnly()),
              RetScheme::kReturnRetpoline);
    EXPECT_EQ(harden::returnSchemeFor(DefenseConfig::lviOnly()),
              RetScheme::kLviRet);
    EXPECT_EQ(harden::returnSchemeFor(DefenseConfig::all()),
              RetScheme::kFencedRet);
}

TEST(DefenseConfig, Names)
{
    EXPECT_EQ(DefenseConfig::none().name(), "none");
    EXPECT_EQ(DefenseConfig::retpolinesOnly().name(), "retpolines");
    EXPECT_EQ(DefenseConfig::all().name(),
              "retpolines+lvi-cfi+ret-retpolines");
    EXPECT_EQ(DefenseConfig::jumpSwitches().name(), "jumpswitches");
}

TEST(Harden, AppliesSchemesAndLowersJumpTables)
{
    Module m = makeSurfaceModule();
    auto report = harden::applyDefenses(m, DefenseConfig::all());
    EXPECT_EQ(report.lowered_switches, 1u);
    EXPECT_EQ(report.protected_icalls, 1u);
    EXPECT_EQ(report.vulnerable_icalls, 1u); // the asm site
    EXPECT_EQ(report.vulnerable_ijumps, 0u);
    EXPECT_EQ(report.boot_only_rets, 1u);
    EXPECT_EQ(report.protected_rets, 3u); // leaf + hot's two rets
    EXPECT_TRUE(test::verifies(m));
}

TEST(Harden, AsmSwitchStaysVulnerable)
{
    Module m;
    ir::FuncId f = m.addFunction("asm_dispatch", 1);
    FunctionBuilder b(m, f);
    ir::BlockId d = b.newBlock();
    ir::BlockId c1 = b.newBlock();
    b.switchOn(b.param(0), d, {{0, c1}}, /*is_asm=*/true);
    b.setBlock(c1);
    b.ret(b.constI(1));
    b.setBlock(d);
    b.ret(b.constI(0));
    auto report = harden::applyDefenses(m, DefenseConfig::all());
    EXPECT_EQ(report.vulnerable_ijumps, 1u);
}

TEST(Harden, NoDefensesLeavesEverythingAlone)
{
    Module m = makeSurfaceModule();
    auto report = harden::applyDefenses(m, DefenseConfig::none());
    EXPECT_EQ(report.protected_icalls, 0u);
    EXPECT_EQ(report.vulnerable_icalls, 2u);
    EXPECT_EQ(report.protected_rets, 0u);
    EXPECT_EQ(opt::countSwitches(m), 1u); // jump table kept
}

TEST(Harden, SemanticsUnchangedByHardening)
{
    Module m = makeSurfaceModule();
    ir::FuncId f = m.findFunction("hot");
    auto before = test::runScript(m, f, {{0}, {1}, {5}});
    harden::applyDefenses(m, DefenseConfig::all());
    EXPECT_EQ(test::runScript(m, f, {{0}, {1}, {5}}), before);
}

TEST(Harden, RetpolinesOnlyLeavesReturnsPlain)
{
    Module m = makeSurfaceModule();
    harden::applyDefenses(m, DefenseConfig::retpolinesOnly());
    for (const ir::Function& f : m.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.op == ir::Opcode::kRet)
                    EXPECT_EQ(inst.ret_scheme, RetScheme::kNone);
                if (inst.op == ir::Opcode::kICall && !inst.is_asm)
                    EXPECT_EQ(inst.fwd_scheme, FwdScheme::kRetpoline);
            }
        }
    }
}

TEST(Harden, AnalyzeCoverageMatchesApplyReport)
{
    Module m = makeSurfaceModule();
    auto applied = harden::applyDefenses(m, DefenseConfig::all());
    auto analyzed = harden::analyzeCoverage(m);
    EXPECT_EQ(applied.protected_icalls, analyzed.protected_icalls);
    EXPECT_EQ(applied.vulnerable_icalls, analyzed.vulnerable_icalls);
    EXPECT_EQ(applied.protected_rets, analyzed.protected_rets);
    EXPECT_EQ(applied.boot_only_rets, analyzed.boot_only_rets);
}

/** Every defense combination keeps the module valid and equivalent. */
class HardenCombos : public ::testing::TestWithParam<int>
{
};

TEST_P(HardenCombos, AllCombinationsPreserveBehaviour)
{
    const int bits = GetParam();
    DefenseConfig cfg;
    cfg.retpoline = bits & 1;
    cfg.lvi_cfi = bits & 2;
    cfg.ret_retpoline = bits & 4;
    cfg.jump_switches = (bits & 8) && cfg.retpoline;

    Module m = makeSurfaceModule();
    ir::FuncId f = m.findFunction("hot");
    auto before = test::runScript(m, f, {{0}, {1}, {7}});
    harden::applyDefenses(m, cfg);
    ASSERT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runScript(m, f, {{0}, {1}, {7}}), before);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, HardenCombos,
                         ::testing::Range(0, 16));

} // namespace
} // namespace pibe
