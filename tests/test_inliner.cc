/** @file Tests for the PIBE greedy inliner and the default comparator. */
#include <gtest/gtest.h>

#include "analysis/inline_cost.h"
#include "ir/builder.h"
#include "opt/inliner.h"
#include "tests/test_util.h"
#include "uarch/simulator.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;
using ir::Opcode;

size_t
countCallsTo(const ir::Function& f, ir::FuncId callee)
{
    size_t n = 0;
    for (const auto& bb : f.blocks) {
        for (const auto& inst : bb.insts)
            n += (inst.op == Opcode::kCall && inst.callee == callee);
    }
    return n;
}

/** Make a leaf whose InlineCost is roughly `cost_units`. */
ir::FuncId
makeLeafWithCost(Module& m, const std::string& name, int64_t cost_units)
{
    ir::FuncId f = m.addFunction(name, 1);
    FunctionBuilder b(m, f);
    ir::Reg acc = b.param(0);
    // Each binImm adds one 5-unit binop; the trailing ret adds 5.
    for (int64_t i = 0; i * 5 < cost_units - 5; ++i)
        acc = b.binImm(BinKind::kAdd, acc, i + 1);
    b.ret(acc);
    return f;
}

/** Caller with three weighted call sites; returns the site ids. */
struct WeightedModule
{
    Module m;
    ir::FuncId caller;
    ir::FuncId hot, warm, cold;
    ir::SiteId hot_site, warm_site, cold_site;
    profile::EdgeProfile profile;
};

WeightedModule
makeWeightedModule(int64_t hot_cost = 50, int64_t warm_cost = 50,
                   int64_t cold_cost = 50)
{
    WeightedModule w;
    w.hot = makeLeafWithCost(w.m, "hot", hot_cost);
    w.warm = makeLeafWithCost(w.m, "warm", warm_cost);
    w.cold = makeLeafWithCost(w.m, "cold", cold_cost);
    w.caller = w.m.addFunction("caller", 1);
    FunctionBuilder b(w.m, w.caller);
    ir::Reg r1 = b.call(w.hot, {b.param(0)});
    ir::Reg r2 = b.call(w.warm, {r1});
    ir::Reg r3 = b.call(w.cold, {r2});
    b.ret(r3);
    const auto& insts = w.m.func(w.caller).blocks[0].insts;
    w.hot_site = insts[0].site_id;
    w.warm_site = insts[1].site_id;
    w.cold_site = insts[2].site_id;
    w.profile.addDirect(w.hot_site, 1000);
    w.profile.addDirect(w.warm_site, 100);
    w.profile.addDirect(w.cold_site, 1);
    w.profile.addInvocation(w.hot, 1000);
    w.profile.addInvocation(w.warm, 100);
    w.profile.addInvocation(w.cold, 1);
    w.profile.addInvocation(w.caller, 1000);
    return w;
}

TEST(PibeInliner, InlinesEverythingAtFullBudget)
{
    WeightedModule w = makeWeightedModule();
    auto before = test::runFunction(w.m, w.caller, {3});
    opt::PibeInlinerConfig cfg;
    cfg.budget = 1.0;
    auto audit = opt::runPibeInliner(w.m, w.profile, cfg);
    EXPECT_EQ(audit.inlined_sites, 3u);
    EXPECT_EQ(audit.inlined_weight, 1101u);
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.hot), 0u);
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.cold), 0u);
    EXPECT_TRUE(test::verifies(w.m));
    EXPECT_EQ(test::runFunction(w.m, w.caller, {3}), before);
}

TEST(PibeInliner, BudgetSelectsOnlyHottestSites)
{
    WeightedModule w = makeWeightedModule();
    opt::PibeInlinerConfig cfg;
    // 1000 / 1101 = 90.8% of weight: a 0.90 budget covers just "hot".
    cfg.budget = 0.90;
    auto audit = opt::runPibeInliner(w.m, w.profile, cfg);
    EXPECT_EQ(audit.inlined_sites, 1u);
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.hot), 0u);
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.warm), 1u);
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.cold), 1u);
}

TEST(PibeInliner, ZeroProfileMeansNoCandidates)
{
    WeightedModule w = makeWeightedModule();
    profile::EdgeProfile empty;
    auto audit = opt::runPibeInliner(w.m, empty, {});
    EXPECT_EQ(audit.candidate_sites, 0u);
    EXPECT_EQ(audit.inlined_sites, 0u);
}

TEST(PibeInliner, Rule3BlocksHeavyCallee)
{
    WeightedModule w = makeWeightedModule(/*hot_cost=*/4000);
    opt::PibeInlinerConfig cfg;
    cfg.budget = 1.0;
    auto audit = opt::runPibeInliner(w.m, w.profile, cfg);
    // The hot callee exceeds the 3000-unit Rule 3 threshold.
    EXPECT_EQ(audit.blocked_rule3_weight, 1000u);
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.hot), 1u);
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.warm), 0u);
}

TEST(PibeInliner, Rule2BlocksWhenCallerBudgetExhausted)
{
    WeightedModule w = makeWeightedModule(2500, 2500, 2500);
    opt::PibeInlinerConfig cfg;
    cfg.budget = 1.0;
    cfg.rule2_caller_threshold = 5500;
    cfg.cleanup_callers = false; // keep sizes predictable
    auto audit = opt::runPibeInliner(w.m, w.profile, cfg);
    // hot inlined (caller ~60 + 2500 < 5500); warm inlined takes the
    // caller past the threshold so cold is Rule-2 blocked.
    EXPECT_EQ(audit.inlined_sites, 2u);
    EXPECT_EQ(audit.blocked_rule2_weight, 1u);
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.cold), 1u);
}

TEST(PibeInliner, LaxHeuristicsDisableRulesForHotSites)
{
    WeightedModule w = makeWeightedModule(/*hot_cost=*/4000);
    opt::PibeInlinerConfig cfg;
    cfg.budget = 1.0;
    cfg.lax_heuristics = true;
    cfg.lax_budget = 0.90; // covers the hot site only
    auto audit = opt::runPibeInliner(w.m, w.profile, cfg);
    // Rule 3 would block hot, but lax exempts it.
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.hot), 0u);
    EXPECT_EQ(audit.blocked_rule3_weight, 0u);
}

TEST(PibeInliner, NoInlineCalleeCountsAsOther)
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 1, ir::kAttrNoInline);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.param(0));
    }
    ir::FuncId caller = m.addFunction("caller", 1);
    ir::SiteId site;
    {
        FunctionBuilder b(m, caller);
        ir::Reg r = b.call(leaf, {b.param(0)});
        site = m.func(caller).blocks[0].insts[0].site_id;
        b.ret(r);
    }
    profile::EdgeProfile p;
    p.addDirect(site, 500);
    p.addInvocation(leaf, 500);
    auto audit = opt::runPibeInliner(m, p, {});
    EXPECT_EQ(audit.blocked_other_weight, 500u);
    EXPECT_EQ(audit.inlined_sites, 0u);
}

TEST(PibeInliner, RecursiveCalleeNeverInlined)
{
    Module m;
    ir::FuncId rec = m.addFunction("rec", 1);
    ir::SiteId rec_site;
    {
        FunctionBuilder b(m, rec);
        ir::Reg stop = b.binImm(BinKind::kLe, b.param(0), 0);
        ir::BlockId base = b.newBlock();
        ir::BlockId again = b.newBlock();
        b.condBr(stop, base, again);
        b.setBlock(base);
        b.ret(b.constI(0));
        b.setBlock(again);
        ir::Reg r =
            b.call(rec, {b.binImm(BinKind::kSub, b.param(0), 1)});
        rec_site = r; // placeholder; fetched below
        b.ret(r);
    }
    ir::FuncId caller = m.addFunction("caller", 1);
    ir::SiteId call_site;
    {
        FunctionBuilder b(m, caller);
        ir::Reg r = b.call(rec, {b.param(0)});
        call_site = m.func(caller).blocks[0].insts[0].site_id;
        b.ret(r);
    }
    (void)rec_site;
    profile::EdgeProfile p;
    p.addDirect(call_site, 900);
    p.addInvocation(rec, 1800);
    auto audit = opt::runPibeInliner(m, p, {});
    EXPECT_EQ(audit.inlined_sites, 0u);
    EXPECT_EQ(audit.blocked_other_weight, 900u);
}

TEST(PibeInliner, ConstantRatioPropagatesInheritedWeights)
{
    // caller --(100)--> mid --(400 total over 200 invocations)--> leaf
    // Inlining mid into caller must credit the inherited leaf site
    // with 400 * 100 / 200 = 200 executions (§5.2 Rule 1). The leaf is
    // noinline so the inherited site survives for inspection.
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 1, ir::kAttrNoInline);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.binImm(BinKind::kAdd, b.param(0), 1));
    }
    ir::FuncId mid = m.addFunction("mid", 1);
    ir::SiteId leaf_site;
    {
        FunctionBuilder b(m, mid);
        ir::Reg r = b.call(leaf, {b.param(0)});
        leaf_site = m.func(mid).blocks[0].insts[0].site_id;
        b.ret(r);
    }
    ir::FuncId caller = m.addFunction("caller", 1);
    ir::SiteId mid_site;
    {
        FunctionBuilder b(m, caller);
        ir::Reg r = b.call(mid, {b.param(0)});
        mid_site = m.func(caller).blocks[0].insts[0].site_id;
        b.ret(r);
    }
    profile::EdgeProfile p;
    p.addDirect(mid_site, 100);
    p.addDirect(leaf_site, 400);
    p.addInvocation(mid, 200);
    p.addInvocation(leaf, 400);
    p.addInvocation(caller, 100);

    const ir::SiteId bound_before = m.siteIdBound();
    opt::PibeInlinerConfig cfg;
    cfg.budget = 1.0;
    cfg.cleanup_callers = false;
    auto audit = opt::runPibeInliner(m, p, cfg);
    // Only mid is inlinable (100); the leaf original (400) and the
    // inherited copy (scaled to 200) are refused as noinline.
    EXPECT_EQ(audit.inlined_weight, 100u);
    EXPECT_EQ(audit.inlined_sites, 1u);
    EXPECT_EQ(audit.blocked_other_weight, 600u);
    // The original leaf-in-mid site keeps its count; the inherited
    // copy got exactly the constant-ratio scaled count.
    EXPECT_EQ(p.directCount(leaf_site), 400u);
    bool found_inherited = false;
    for (const auto& [site, count] : p.directSites()) {
        if (site >= bound_before) {
            EXPECT_EQ(count, 200u);
            found_inherited = true;
        }
    }
    EXPECT_TRUE(found_inherited);
}

TEST(PibeInliner, AuditTotalsAreConsistent)
{
    test::GenConfig g;
    g.seed = 77;
    g.with_icalls = false;
    Module m = test::generateModule(g);
    ir::FuncId main = test::generatedMain(m);

    // Profile by running for real.
    profile::EdgeProfile p;
    {
        uarch::Simulator sim(m);
        sim.setTimingEnabled(false);
        sim.setProfiler(&p);
        for (const auto& args : test::argMatrix())
            sim.run(main, args);
    }
    uint64_t total = p.totalDirectWeight();
    auto audit = opt::runPibeInliner(m, p, {});
    EXPECT_EQ(audit.total_weight, total);
    EXPECT_LE(audit.eligible_weight, audit.total_weight);
    EXPECT_LE(audit.blocked_rule2_weight + audit.blocked_rule3_weight,
              audit.total_weight + audit.inlined_weight);
}

TEST(DefaultInliner, InlinesSmallCalleesInCodeOrder)
{
    WeightedModule w = makeWeightedModule(50, 50, 50);
    opt::DefaultInlinerConfig cfg;
    auto before = test::runFunction(w.m, w.caller, {4});
    auto audit = opt::runDefaultInliner(w.m, w.profile, cfg);
    EXPECT_EQ(audit.inlined_sites, 3u); // all are tiny; even cold goes
    EXPECT_TRUE(test::verifies(w.m));
    EXPECT_EQ(test::runFunction(w.m, w.caller, {4}), before);
}

TEST(DefaultInliner, SizeBlindToWeight)
{
    // A hot-but-big callee is skipped while a cold-but-small one is
    // inlined -- the §8.4 failure mode of the default inliner.
    WeightedModule w = makeWeightedModule(/*hot_cost=*/3500,
                                          /*warm_cost=*/50,
                                          /*cold_cost=*/50);
    opt::DefaultInlinerConfig cfg;
    auto audit = opt::runDefaultInliner(w.m, w.profile, cfg);
    (void)audit;
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.hot), 1u);  // skipped
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.cold), 0u); // inlined
}

TEST(DefaultInliner, ColdThresholdIsTighter)
{
    // A 1000-unit callee is inlinable when hot but not when cold.
    WeightedModule w = makeWeightedModule(1000, 50, 1000);
    opt::DefaultInlinerConfig cfg;
    cfg.budget = 0.90; // hot only
    auto audit = opt::runDefaultInliner(w.m, w.profile, cfg);
    (void)audit;
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.hot), 0u);
    EXPECT_EQ(countCallsTo(w.m.func(w.caller), w.cold), 1u);
}

/** Property: both inliners preserve semantics on random modules. */
class InlinerProperty : public ::testing::TestWithParam<uint64_t>
{
  protected:
    void
    SetUp() override
    {
        test::GenConfig g;
        g.seed = GetParam();
        m_ = test::generateModule(g);
        main_ = test::generatedMain(m_);
        uarch::Simulator sim(m_);
        sim.setTimingEnabled(false);
        sim.setProfiler(&profile_);
        for (const auto& args : test::argMatrix())
            sim.run(main_, args);
        before_ = test::runScript(m_, main_, test::argMatrix());
    }

    Module m_;
    ir::FuncId main_ = ir::kInvalidFunc;
    profile::EdgeProfile profile_;
    std::vector<test::RunOutcome> before_;
};

TEST_P(InlinerProperty, PibeInlinerPreservesSemantics)
{
    opt::PibeInlinerConfig cfg;
    cfg.budget = 1.0;
    opt::runPibeInliner(m_, profile_, cfg);
    ASSERT_TRUE(test::verifies(m_));
    EXPECT_EQ(test::runScript(m_, main_, test::argMatrix()), before_);
}

TEST_P(InlinerProperty, DefaultInlinerPreservesSemantics)
{
    opt::runDefaultInliner(m_, profile_, {});
    ASSERT_TRUE(test::verifies(m_));
    EXPECT_EQ(test::runScript(m_, main_, test::argMatrix()), before_);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InlinerProperty,
                         ::testing::Range<uint64_t>(1, 16));

} // namespace
} // namespace pibe
