/** @file Tests for predictors and the instruction cache. */
#include <gtest/gtest.h>

#include "uarch/icache.h"
#include "uarch/predictors.h"

namespace pibe {
namespace {

using uarch::Btb;
using uarch::ICache;
using uarch::Pht;
using uarch::Rsb;

TEST(BtbTest, PredictsAfterTraining)
{
    Btb btb(64);
    EXPECT_EQ(btb.predict(0x100), 0u);
    btb.update(0x100, 0xdead);
    EXPECT_EQ(btb.predict(0x100), 0xdeadu);
}

TEST(BtbTest, AliasingEntriesCollide)
{
    Btb btb(64);
    // Two addresses 64*2 bytes apart share the same slot
    // (index = (addr >> 1) & 63).
    const uint64_t a = 0x10;
    const uint64_t b = a + 64 * 2;
    btb.update(a, 111);
    EXPECT_EQ(btb.predict(b), 111u);
}

TEST(BtbTest, PoisonOverridesTraining)
{
    Btb btb(64);
    btb.update(0x40, 0x1000);
    btb.poison(0x40, 0xbad);
    EXPECT_EQ(btb.predict(0x40), 0xbadu);
}

TEST(BtbTest, FlushClears)
{
    Btb btb(64);
    btb.update(0x40, 0x1000);
    btb.flush();
    EXPECT_EQ(btb.predict(0x40), 0u);
}

TEST(RsbTest, LifoPrediction)
{
    Rsb rsb(16);
    rsb.push(0xa);
    rsb.push(0xb);
    EXPECT_EQ(rsb.pop(), 0xbu);
    EXPECT_EQ(rsb.pop(), 0xau);
}

TEST(RsbTest, UnderflowReturnsZero)
{
    Rsb rsb(16);
    EXPECT_EQ(rsb.pop(), 0u);
    rsb.push(1);
    rsb.pop();
    EXPECT_EQ(rsb.pop(), 0u);
}

TEST(RsbTest, OverflowDropsOldestEntries)
{
    Rsb rsb(4);
    for (uint64_t i = 1; i <= 6; ++i)
        rsb.push(i);
    // Only the 4 most recent survive; deeper pops underflow.
    EXPECT_EQ(rsb.pop(), 6u);
    EXPECT_EQ(rsb.pop(), 5u);
    EXPECT_EQ(rsb.pop(), 4u);
    EXPECT_EQ(rsb.pop(), 3u);
    EXPECT_EQ(rsb.pop(), 0u); // 2 and 1 were overwritten
}

TEST(RsbTest, PoisonTopChangesNextPrediction)
{
    Rsb rsb(16);
    rsb.push(0x123);
    rsb.poisonTop(0x666);
    EXPECT_EQ(rsb.pop(), 0x666u);
}

TEST(RsbTest, FillLevelTracksDepth)
{
    Rsb rsb(8);
    EXPECT_EQ(rsb.fillLevel(), 0u);
    rsb.push(1);
    rsb.push(2);
    EXPECT_EQ(rsb.fillLevel(), 2u);
    rsb.pop();
    EXPECT_EQ(rsb.fillLevel(), 1u);
}

TEST(PhtTest, TrainsTowardConstantDirection)
{
    Pht pht(256);
    const uint64_t addr = 0x50;
    // Initial state is weakly-not-taken.
    EXPECT_FALSE(pht.predictTaken(addr));
    // A monotone branch becomes predicted after the history settles.
    for (int i = 0; i < 20; ++i)
        pht.update(addr, true);
    EXPECT_TRUE(pht.predictTaken(addr));
    for (int i = 0; i < 24; ++i)
        pht.update(addr, false);
    EXPECT_FALSE(pht.predictTaken(addr));
}

TEST(PhtTest, GshareLearnsAlternatingPattern)
{
    // The gshare history lets a strictly alternating branch be
    // predicted almost perfectly -- the property ICP's guard chains
    // rely on (a bimodal table would mispredict every time).
    Pht pht(4096);
    const uint64_t addr = 0x88;
    bool taken = false;
    for (int i = 0; i < 200; ++i) { // warm up
        pht.update(addr, taken);
        taken = !taken;
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        if (pht.predictTaken(addr) == taken)
            ++correct;
        pht.update(addr, taken);
        taken = !taken;
    }
    EXPECT_GE(correct, 95);
}

TEST(PhtTest, FlushResetsHistoryAndCounters)
{
    Pht pht(256);
    for (int i = 0; i < 20; ++i)
        pht.update(0x10, true);
    pht.flush();
    EXPECT_FALSE(pht.predictTaken(0x10));
}

TEST(ICacheTest, HitAfterTouch)
{
    ICache cache(1024, 2, 64);
    EXPECT_EQ(cache.touch(0x100), 1u); // cold miss
    EXPECT_EQ(cache.touch(0x104), 0u); // same line
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.accesses(), 2u);
}

TEST(ICacheTest, TouchRangeCountsLines)
{
    ICache cache(4096, 4, 64);
    // 200 bytes spanning 4 lines starting mid-line.
    EXPECT_EQ(cache.touchRange(0x20, 0x20 + 200), 4u);
    EXPECT_EQ(cache.touchRange(0x20, 0x20 + 200), 0u); // all warm
    EXPECT_EQ(cache.touchRange(5, 5), 0u);             // empty range
}

TEST(ICacheTest, CapacityEviction)
{
    // 2 sets * 2 ways * 64B = 256 bytes of cache.
    ICache cache(256, 2, 64);
    // Touch 3 lines mapping to set 0 (stride = 2 sets * 64 = 128).
    cache.touch(0);
    cache.touch(128);
    cache.touch(256); // evicts line 0 (LRU)
    EXPECT_EQ(cache.touch(0), 1u); // miss again
}

TEST(ICacheTest, LruKeepsRecentlyUsed)
{
    ICache cache(256, 2, 64);
    cache.touch(0);
    cache.touch(128);
    cache.touch(0);   // refresh line 0
    cache.touch(256); // evicts 128, not 0
    EXPECT_EQ(cache.touch(0), 0u);
    EXPECT_EQ(cache.touch(128), 1u);
}

TEST(ICacheTest, FlushColdsEverything)
{
    ICache cache(1024, 2, 64);
    cache.touch(0x40);
    cache.flush();
    EXPECT_EQ(cache.touch(0x40), 1u);
}

TEST(ICacheDeath, RejectsBadGeometry)
{
    EXPECT_DEATH(ICache(1000, 3, 64), "icache");
}

} // namespace
} // namespace pibe
