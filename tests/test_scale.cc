/**
 * @file
 * Tests for src/scale: the Linux-scale synthetic module generator, the
 * synthetic flow-conserving profile, the streaming size estimators,
 * and the parallel incremental pipeline's bit-identity guarantee
 * (moduleDigest independent of the worker count).
 */
#include <gtest/gtest.h>

#include "analysis/layout.h"
#include "check/checks.h"
#include "harden/harden.h"
#include "ir/printer.h"
#include "ir/parser.h"
#include "ir/verifier.h"
#include "profile/serialize.h"
#include "runtime/thread_pool.h"
#include "scale/parallel_pipeline.h"
#include "scale/scale_builder.h"
#include "scale/synthetic_profile.h"
#include "uarch/decoded_module.h"

namespace pibe {
namespace {

scale::ScaleConfig
smallConfig(uint64_t insts = 20000, uint64_t seed = 42)
{
    scale::ScaleConfig cfg;
    cfg.target_insts = insts;
    cfg.seed = seed;
    return cfg;
}

TEST(ScaleBuilder, DeterministicInConfig)
{
    const ir::Module a = scale::buildScaleModule(smallConfig());
    const ir::Module b = scale::buildScaleModule(smallConfig());
    EXPECT_EQ(scale::moduleDigest(a), scale::moduleDigest(b));

    const ir::Module c =
        scale::buildScaleModule(smallConfig(20000, 43));
    EXPECT_NE(scale::moduleDigest(a), scale::moduleDigest(c));
}

TEST(ScaleBuilder, HitsTargetSizeAndShape)
{
    scale::ScaleStats stats;
    const ir::Module m =
        scale::buildScaleModule(smallConfig(50000), &stats);
    // Within 10% of the requested instruction count.
    EXPECT_GT(stats.num_insts, 45000u);
    EXPECT_LT(stats.num_insts, 55000u);
    EXPECT_GT(stats.icall_sites, 0u);
    EXPECT_GT(stats.num_tables, 0u);
    EXPECT_EQ(stats.ret_sites, stats.num_functions);
}

TEST(ScaleBuilder, OutputIsCheckCleanWithProfileFlow)
{
    const ir::Module m = scale::buildScaleModule(smallConfig());
    const profile::EdgeProfile prof = scale::synthesizeProfile(m);

    check::CheckOptions opts;
    opts.profile = &prof;
    opts.profile_flow = true;
    const check::CheckReport report = check::runChecks(m, opts);
    for (const check::Diagnostic& d : report.diags)
        EXPECT_NE(d.severity, check::Severity::kError) << d.render();
}

TEST(ScaleBuilder, TextRoundTripsThroughParser)
{
    const ir::Module m = scale::buildScaleModule(smallConfig(8000));
    const ir::Module back = ir::parseModule(ir::printModule(m));
    EXPECT_TRUE(ir::verifyModule(back).empty());
    EXPECT_EQ(scale::moduleDigest(m), scale::moduleDigest(back));
}

TEST(ScaleProfile, DeterministicAndNonTrivial)
{
    const ir::Module m = scale::buildScaleModule(smallConfig());
    const profile::EdgeProfile a = scale::synthesizeProfile(m);
    const profile::EdgeProfile b = scale::synthesizeProfile(m);
    EXPECT_EQ(profile::serializeProfile(m, a),
              profile::serializeProfile(m, b));
    EXPECT_FALSE(a.directSites().empty());
    EXPECT_FALSE(a.indirectSites().empty());
}

TEST(ScaleEstimators, StreamingSizesMatchMaterializedOnes)
{
    const ir::Module m = scale::buildScaleModule(smallConfig());
    EXPECT_EQ(analysis::imageSizeOf(m),
              analysis::CodeLayout(m).imageSize());
    EXPECT_EQ(uarch::estimateDecodedBytes(m),
              uarch::DecodedModule(m).decodedBytes());

    // Still equal after the pipeline reshapes the module (promoted
    // calls, inlined bodies, lowered switches).
    scale::ParallelPipelineConfig cfg;
    cfg.defenses = harden::DefenseConfig::all();
    cfg.run_checks = false;
    const ir::Module image = scale::buildImageParallel(
        m, scale::synthesizeProfile(m), cfg);
    EXPECT_EQ(analysis::imageSizeOf(image),
              analysis::CodeLayout(image).imageSize());
    EXPECT_EQ(uarch::estimateDecodedBytes(image),
              uarch::DecodedModule(image).decodedBytes());
}

TEST(ScalePipeline, ParallelImageIsBitIdenticalToSerial)
{
    const ir::Module m = scale::buildScaleModule(smallConfig());
    const profile::EdgeProfile prof = scale::synthesizeProfile(m);

    scale::ParallelPipelineConfig cfg;
    cfg.defenses = harden::DefenseConfig::all();

    cfg.jobs = 1;
    scale::ParallelPipelineReport serial_rep;
    const ir::Module serial =
        scale::buildImageParallel(m, prof, cfg, &serial_rep);

    cfg.jobs = 4;
    scale::ParallelPipelineReport par_rep;
    const ir::Module parallel =
        scale::buildImageParallel(m, prof, cfg, &par_rep);

    EXPECT_EQ(scale::moduleDigest(serial),
              scale::moduleDigest(parallel));
    // And the pipeline actually did something.
    EXPECT_NE(scale::moduleDigest(serial), scale::moduleDigest(m));
    EXPECT_GT(serial_rep.icp.promoted_sites, 0u);
    EXPECT_GT(serial_rep.inlining.inlined_sites, 0u);
    EXPECT_EQ(serial_rep.inlining.inlined_sites,
              par_rep.inlining.inlined_sites);
    EXPECT_GT(serial_rep.coverage.protected_icalls, 0u);
    EXPECT_GT(serial_rep.coverage.protected_rets, 0u);
}

TEST(ScalePipeline, AuditIsCleanAndIncremental)
{
    const ir::Module m = scale::buildScaleModule(smallConfig());
    const profile::EdgeProfile prof = scale::synthesizeProfile(m);

    scale::ParallelPipelineConfig cfg;
    cfg.defenses = harden::DefenseConfig::all();
    cfg.jobs = 3;
    scale::ParallelPipelineReport rep;
    const ir::Module image =
        scale::buildImageParallel(m, prof, cfg, &rep);

    EXPECT_EQ(rep.checks.errors(), 0u)
        << rep.checks.diags.front().render();
    EXPECT_GT(rep.analyses_computed, 0u);
    // Shard-local AnalysisManagers serve each function's repeated
    // analyses from cache across the per-function check suite.
    EXPECT_GT(rep.analyses_reused, 0u);
    EXPECT_GT(rep.image_size, rep.baseline_image_size);
    EXPECT_EQ(rep.image_size, analysis::imageSizeOf(image));
}

// The small-module bypass and a caller-injected warm pool are pure
// scheduling changes: digest, audit, and coverage must be identical
// to the pooled build, and the report must say which path ran.
TEST(ScalePipeline, SerialBypassAndInjectedPoolAreBitIdentical)
{
    const ir::Module m = scale::buildScaleModule(smallConfig());
    const profile::EdgeProfile prof = scale::synthesizeProfile(m);

    scale::ParallelPipelineConfig cfg;
    cfg.defenses = harden::DefenseConfig::all();
    cfg.jobs = 4;

    // Pooled run (threshold below the module size).
    cfg.serial_below_insts = 0;
    scale::ParallelPipelineReport pooled_rep;
    const ir::Module pooled =
        scale::buildImageParallel(m, prof, cfg, &pooled_rep);
    EXPECT_FALSE(pooled_rep.serial_bypass);
    EXPECT_EQ(pooled_rep.jobs_used, 4u);

    // Bypass run (threshold above the module size): same digest.
    cfg.serial_below_insts = 1u << 30;
    scale::ParallelPipelineReport bypass_rep;
    const ir::Module bypassed =
        scale::buildImageParallel(m, prof, cfg, &bypass_rep);
    EXPECT_TRUE(bypass_rep.serial_bypass);
    EXPECT_EQ(bypass_rep.jobs_used, 1u);
    EXPECT_EQ(scale::moduleDigest(pooled), scale::moduleDigest(bypassed));
    EXPECT_EQ(check::renderText(pooled_rep.checks.diags),
              check::renderText(bypass_rep.checks.diags));
    EXPECT_EQ(pooled_rep.inlining.inlined_sites,
              bypass_rep.inlining.inlined_sites);
    EXPECT_EQ(pooled_rep.coverage.protected_icalls,
              bypass_rep.coverage.protected_icalls);

    // Injected warm pool: pool size wins over cfg.jobs.
    runtime::ThreadPool pool(3);
    cfg.serial_below_insts = 0;
    cfg.pool = &pool;
    scale::ParallelPipelineReport inj_rep;
    const ir::Module injected =
        scale::buildImageParallel(m, prof, cfg, &inj_rep);
    EXPECT_FALSE(inj_rep.serial_bypass);
    EXPECT_EQ(inj_rep.jobs_used, 3u);
    EXPECT_EQ(scale::moduleDigest(pooled), scale::moduleDigest(injected));

    // The quiet/participant partition covered every function, and the
    // build's stage clock ran.
    EXPECT_EQ(pooled_rep.quiet_funcs + pooled_rep.participant_funcs,
              static_cast<size_t>(m.numFunctions()));
    EXPECT_GT(pooled_rep.quiet_funcs, 0u);
    EXPECT_GT(pooled_rep.participant_funcs, 0u);
    EXPECT_GT(pooled_rep.timing.total_ms, 0.0);
    EXPECT_GT(pooled_rep.timing.cpu_ms, 0.0);
}

} // namespace
} // namespace pibe
