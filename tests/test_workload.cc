/** @file Tests for the workload suite and profiling harness. */
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "pibe/experiment.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace pibe {
namespace {

kernel::KernelConfig
testConfig()
{
    kernel::KernelConfig cfg;
    cfg.num_drivers = 8;
    return cfg;
}

class WorkloadTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        image_ = new kernel::KernelImage(
            kernel::buildKernel(testConfig()));
    }

    static void
    TearDownTestSuite()
    {
        delete image_;
        image_ = nullptr;
    }

    static kernel::KernelImage* image_;
};

kernel::KernelImage* WorkloadTest::image_ = nullptr;

TEST_F(WorkloadTest, SuiteMatchesTable2Order)
{
    auto suite = workload::makeLmbenchSuite();
    ASSERT_EQ(suite.size(), 20u);
    const char* expected[] = {
        "null",       "read",      "write",       "open",
        "stat",       "fstat",     "af_unix",     "fork/exit",
        "fork/exec",  "fork/shell", "pipe",       "select_file",
        "select_tcp", "tcp_conn",  "udp",         "tcp",
        "mmap",       "page_fault", "sig_install", "sig_dispatch",
    };
    for (size_t i = 0; i < 20; ++i)
        EXPECT_EQ(suite[i]->name(), expected[i]) << "index " << i;
}

TEST_F(WorkloadTest, RetpolineSubsetIsFromTheSuite)
{
    auto names = workload::lmbenchRetpolineSubset();
    EXPECT_EQ(names.size(), 12u);
    for (const auto& name : names) {
        auto wl = workload::makeLmbenchTest(name);
        EXPECT_EQ(wl->name(), name);
    }
}

TEST_F(WorkloadTest, UnknownTestNameDies)
{
    EXPECT_DEATH(workload::makeLmbenchTest("bogus"), "unknown LMBench");
}

TEST_F(WorkloadTest, EveryLmbenchTestRuns)
{
    for (auto& wl : workload::makeLmbenchSuite()) {
        uarch::Simulator sim(image_->module);
        sim.setTimingEnabled(false);
        workload::KernelHandle handle(sim, image_->info);
        handle.boot();
        wl->setup(handle);
        for (uint64_t i = 0; i < 25; ++i)
            wl->iteration(handle, i);
        SUCCEED() << wl->name();
    }
}

TEST_F(WorkloadTest, MacroWorkloadsRun)
{
    for (auto maker : {workload::makeNginxWorkload,
                       workload::makeApacheWorkload,
                       workload::makeDbenchWorkload}) {
        auto wl = maker();
        uarch::Simulator sim(image_->module);
        sim.setTimingEnabled(false);
        workload::KernelHandle handle(sim, image_->info);
        handle.boot();
        wl->setup(handle);
        for (uint64_t i = 0; i < 30; ++i)
            wl->iteration(handle, i);
        SUCCEED() << wl->name();
    }
}

TEST_F(WorkloadTest, ProfileCollectionIsDeterministic)
{
    auto suite = workload::makeLmbenchSuite();
    auto p1 = core::collectProfile(image_->module, image_->info, suite,
                                   /*iters=*/25);
    auto p2 = core::collectProfile(image_->module, image_->info, suite,
                                   /*iters=*/25);
    EXPECT_EQ(p1.totalDirectWeight(), p2.totalDirectWeight());
    EXPECT_EQ(p1.totalIndirectWeight(), p2.totalIndirectWeight());
    EXPECT_EQ(p1.numDirectSites(), p2.numDirectSites());
    EXPECT_GT(p1.totalDirectWeight(), 0u);
    EXPECT_GT(p1.numIndirectSites(), 0u);
}

TEST_F(WorkloadTest, ProfileRepeatsScaleCounts)
{
    auto suite = workload::makeLmbenchSuite();
    auto p1 = core::collectProfile(image_->module, image_->info, suite,
                                   20, /*repeats=*/1);
    auto p2 = core::collectProfile(image_->module, image_->info, suite,
                                   20, /*repeats=*/2);
    EXPECT_EQ(p2.totalDirectWeight(), 2 * p1.totalDirectWeight());
}

TEST_F(WorkloadTest, MeasurementProducesPositiveLatency)
{
    auto wl = workload::makeLmbenchTest("null");
    core::MeasureConfig cfg;
    cfg.warmup_iters = 10;
    cfg.measure_iters = 40;
    auto m = core::measureWorkload(image_->module, image_->info, *wl,
                                   cfg);
    EXPECT_GT(m.latency_us, 0.0);
    EXPECT_GT(m.ops_per_sec, 0.0);
    EXPECT_GT(m.stats.cycles, 0u);
    EXPECT_GT(m.stats.returns, 0u);
}

TEST_F(WorkloadTest, MeasurementIsDeterministic)
{
    auto wl1 = workload::makeLmbenchTest("read");
    auto wl2 = workload::makeLmbenchTest("read");
    core::MeasureConfig cfg;
    cfg.warmup_iters = 10;
    cfg.measure_iters = 50;
    auto a = core::measureWorkload(image_->module, image_->info, *wl1,
                                   cfg);
    auto b = core::measureWorkload(image_->module, image_->info, *wl2,
                                   cfg);
    EXPECT_DOUBLE_EQ(a.latency_us, b.latency_us);
}

TEST_F(WorkloadTest, ApacheProfileSharesHotSitesWithLmbench)
{
    // §8.4: the two workloads overlap substantially on promotion
    // candidates even though Apache is monotonic.
    auto lm = workload::makeLmbenchSuite();
    auto lm_profile =
        core::collectProfile(image_->module, image_->info, lm, 25);

    std::vector<std::unique_ptr<workload::Workload>> apache;
    apache.push_back(workload::makeApacheWorkload());
    auto ap_profile =
        core::collectProfile(image_->module, image_->info, apache, 60);

    size_t shared = 0, apache_sites = 0;
    for (const auto& [site, targets] : ap_profile.indirectSites()) {
        (void)targets;
        ++apache_sites;
        shared += lm_profile.indirectCount(site) > 0;
    }
    ASSERT_GT(apache_sites, 0u);
    EXPECT_GE(static_cast<double>(shared) /
                  static_cast<double>(apache_sites),
              0.5);
}

} // namespace
} // namespace pibe
