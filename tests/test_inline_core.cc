/** @file Tests for the inlining transformation mechanics. */
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "opt/inline_core.h"
#include "tests/test_util.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;
using ir::Opcode;

/** Find the first kCall site id in a function. */
ir::SiteId
firstCallSite(const ir::Function& f)
{
    for (const auto& bb : f.blocks) {
        for (const auto& inst : bb.insts) {
            if (inst.op == Opcode::kCall)
                return inst.site_id;
        }
    }
    return ir::kNoSite;
}

size_t
countCalls(const ir::Function& f)
{
    size_t n = 0;
    for (const auto& bb : f.blocks) {
        for (const auto& inst : bb.insts)
            n += (inst.op == Opcode::kCall);
    }
    return n;
}

TEST(InlineCore, InlinesSimpleCallee)
{
    Module m;
    ir::FuncId callee = m.addFunction("callee", 1);
    {
        FunctionBuilder b(m, callee);
        b.ret(b.binImm(BinKind::kMul, b.param(0), 3));
    }
    ir::FuncId caller = m.addFunction("caller", 1);
    {
        FunctionBuilder b(m, caller);
        ir::Reg r = b.call(callee, {b.param(0)});
        b.ret(b.binImm(BinKind::kAdd, r, 1));
    }
    auto before = test::runFunction(m, caller, {5});
    auto outcome = opt::inlineCallSite(m, caller,
                                       firstCallSite(m.func(caller)));
    ASSERT_TRUE(outcome.ok);
    EXPECT_TRUE(test::verifies(m));
    EXPECT_EQ(countCalls(m.func(caller)), 0u);
    EXPECT_EQ(test::runFunction(m, caller, {5}), before);
    EXPECT_EQ(test::runFunction(m, caller, {5}).result, 16);
}

TEST(InlineCore, HandlesVoidStyleReturn)
{
    Module m;
    m.addGlobal("g", {0});
    ir::FuncId callee = m.addFunction("store7", 0);
    {
        FunctionBuilder b(m, callee);
        ir::Reg z = b.constI(0);
        ir::Reg seven = b.constI(7);
        b.store(0, z, seven);
        b.ret(); // void return
    }
    ir::FuncId caller = m.addFunction("caller", 0);
    {
        FunctionBuilder b(m, caller);
        b.call(callee);
        ir::Reg z = b.constI(0);
        ir::Reg v = b.load(0, z);
        b.ret(v);
    }
    auto outcome = opt::inlineCallSite(m, caller,
                                       firstCallSite(m.func(caller)));
    ASSERT_TRUE(outcome.ok);
    EXPECT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runFunction(m, caller, {}).result, 7);
}

TEST(InlineCore, MultipleReturnPaths)
{
    Module m;
    ir::FuncId callee = m.addFunction("abs_like", 1);
    {
        FunctionBuilder b(m, callee);
        ir::Reg neg = b.binImm(BinKind::kLt, b.param(0), 0);
        ir::BlockId n = b.newBlock();
        ir::BlockId p = b.newBlock();
        b.condBr(neg, n, p);
        b.setBlock(n);
        ir::Reg z = b.constI(0);
        b.ret(b.bin(BinKind::kSub, z, b.param(0)));
        b.setBlock(p);
        b.ret(b.param(0));
    }
    ir::FuncId caller = m.addFunction("caller", 1);
    {
        FunctionBuilder b(m, caller);
        ir::Reg r = b.call(callee, {b.param(0)});
        b.ret(r);
    }
    auto outcome = opt::inlineCallSite(m, caller,
                                       firstCallSite(m.func(caller)));
    ASSERT_TRUE(outcome.ok);
    EXPECT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runFunction(m, caller, {-9}).result, 9);
    EXPECT_EQ(test::runFunction(m, caller, {4}).result, 4);
}

TEST(InlineCore, RemapsFrameSlots)
{
    Module m;
    ir::FuncId callee = m.addFunction("uses_frame", 1);
    {
        FunctionBuilder b(m, callee);
        uint32_t s = b.newFrameSlot();
        b.frameStore(s, b.param(0));
        b.ret(b.frameLoad(s));
    }
    ir::FuncId caller = m.addFunction("caller", 1);
    {
        FunctionBuilder b(m, caller);
        uint32_t s = b.newFrameSlot();
        b.frameStore(s, b.param(0));
        ir::Reg r = b.call(callee, {b.binImm(BinKind::kAdd,
                                             b.param(0), 100)});
        ir::Reg mine = b.frameLoad(s);
        b.ret(b.bin(BinKind::kAdd, r, mine));
    }
    uint32_t caller_frame = m.func(caller).frame_size;
    auto outcome = opt::inlineCallSite(m, caller,
                                       firstCallSite(m.func(caller)));
    ASSERT_TRUE(outcome.ok);
    EXPECT_TRUE(test::verifies(m));
    // Caller's frame grew by the callee's.
    EXPECT_EQ(m.func(caller).frame_size, caller_frame + 1);
    // (x+100) + x with x=5 -> 110.
    EXPECT_EQ(test::runFunction(m, caller, {5}).result, 110);
}

TEST(InlineCore, ReportsInheritedSitesWithFreshIds)
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 0);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.constI(1));
    }
    ir::FuncId mid = m.addFunction("mid", 0);
    ir::SiteId mid_call_site;
    {
        FunctionBuilder b(m, mid);
        ir::Reg r = b.call(leaf);
        mid_call_site = firstCallSite(m.func(mid));
        ir::Reg t = b.funcAddr(leaf);
        ir::Reg r2 = b.icall(t, {});
        b.ret(b.bin(BinKind::kAdd, r, r2));
    }
    ir::FuncId caller = m.addFunction("caller", 0);
    {
        FunctionBuilder b(m, caller);
        ir::Reg r = b.call(mid);
        b.ret(r);
    }
    ir::SiteId bound_before = m.siteIdBound();
    auto outcome = opt::inlineCallSite(m, caller,
                                       firstCallSite(m.func(caller)));
    ASSERT_TRUE(outcome.ok);
    ASSERT_EQ(outcome.inherited.size(), 2u);
    // One direct (leaf) and one indirect inherited site.
    int direct = 0, indirect = 0;
    for (const auto& inh : outcome.inherited) {
        EXPECT_GE(inh.new_site, bound_before); // fresh ids
        if (inh.indirect) {
            ++indirect;
        } else {
            ++direct;
            EXPECT_EQ(inh.callee_site, mid_call_site);
        }
    }
    EXPECT_EQ(direct, 1);
    EXPECT_EQ(indirect, 1);
    EXPECT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runFunction(m, caller, {}).result, 2);
}

TEST(InlineCore, RefusesNoInlineCallee)
{
    Module m;
    ir::FuncId callee =
        m.addFunction("stubborn", 0, ir::kAttrNoInline);
    {
        FunctionBuilder b(m, callee);
        b.ret(b.constI(0));
    }
    ir::FuncId caller = m.addFunction("caller", 0);
    {
        FunctionBuilder b(m, caller);
        ir::Reg r = b.call(callee);
        b.ret(r);
    }
    auto outcome = opt::inlineCallSite(m, caller,
                                       firstCallSite(m.func(caller)));
    EXPECT_FALSE(outcome.ok);
    EXPECT_STREQ(outcome.reason, "callee is noinline");
}

TEST(InlineCore, RefusesOptNoneCaller)
{
    Module m;
    ir::FuncId callee = m.addFunction("callee", 0);
    {
        FunctionBuilder b(m, callee);
        b.ret(b.constI(0));
    }
    ir::FuncId caller = m.addFunction("caller", 0, ir::kAttrOptNone);
    {
        FunctionBuilder b(m, caller);
        ir::Reg r = b.call(callee);
        b.ret(r);
    }
    auto outcome = opt::inlineCallSite(m, caller,
                                       firstCallSite(m.func(caller)));
    EXPECT_FALSE(outcome.ok);
    EXPECT_STREQ(outcome.reason, "caller is optnone");
}

TEST(InlineCore, RefusesSelfRecursion)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    {
        FunctionBuilder b(m, f);
        ir::Reg stop = b.binImm(BinKind::kLe, b.param(0), 0);
        ir::BlockId base = b.newBlock();
        ir::BlockId rec = b.newBlock();
        b.condBr(stop, base, rec);
        b.setBlock(base);
        b.ret(b.constI(0));
        b.setBlock(rec);
        ir::Reg r = b.call(f, {b.binImm(BinKind::kSub, b.param(0), 1)});
        b.ret(r);
    }
    auto outcome =
        opt::inlineCallSite(m, f, firstCallSite(m.func(f)));
    EXPECT_FALSE(outcome.ok);
    EXPECT_STREQ(outcome.reason, "self-recursive call");
}

TEST(InlineCore, RefusesDeclaration)
{
    Module m;
    ir::FuncId ext = m.addFunction("external", 0, ir::kAttrExternal);
    ir::FuncId caller = m.addFunction("caller", 0);
    {
        FunctionBuilder b(m, caller);
        ir::Reg r = b.call(ext);
        b.ret(r);
    }
    auto outcome = opt::inlineCallSite(m, caller,
                                       firstCallSite(m.func(caller)));
    EXPECT_FALSE(outcome.ok);
}

TEST(InlineCore, UnknownSiteFailsGracefully)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    {
        FunctionBuilder b(m, f);
        b.ret(b.constI(0));
    }
    auto outcome = opt::inlineCallSite(m, f, 424242);
    EXPECT_FALSE(outcome.ok);
    EXPECT_STREQ(outcome.reason, "site not found");
}

/** Property: inlining every inlinable site preserves semantics. */
class InlineCoreProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(InlineCoreProperty, ExhaustiveInliningPreservesSemantics)
{
    test::GenConfig cfg;
    cfg.seed = GetParam();
    Module m = test::generateModule(cfg);
    ir::FuncId main = test::generatedMain(m);
    auto before = test::runScript(m, main, test::argMatrix());

    // Inline main's direct call sites repeatedly (bounded rounds).
    for (int round = 0; round < 4; ++round) {
        std::vector<ir::SiteId> sites;
        for (const auto& bb : m.func(main).blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.op == Opcode::kCall)
                    sites.push_back(inst.site_id);
            }
        }
        if (sites.empty())
            break;
        for (ir::SiteId s : sites)
            opt::inlineCallSite(m, main, s);
        ASSERT_TRUE(test::verifies(m));
    }
    auto after = test::runScript(m, main, test::argMatrix());
    EXPECT_EQ(before, after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InlineCoreProperty,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
} // namespace pibe
