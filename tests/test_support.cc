/** @file Unit tests for src/support (stats, rng, table). */
#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace pibe {
namespace {

TEST(Stats, MedianOddSample)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({5}), 5.0);
}

TEST(Stats, MedianEvenSampleAveragesMiddle)
{
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, MedianDoesNotMutateCallerVisibleOrder)
{
    std::vector<double> v{9, 1, 5};
    EXPECT_DOUBLE_EQ(median(v), 5.0);
}

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
}

TEST(Stats, StddevOfConstantIsZero)
{
    EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({42}), 0.0);
}

TEST(Stats, StddevSimpleSample)
{
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
}

TEST(Stats, GeomeanOfIdenticalOverheads)
{
    EXPECT_NEAR(geomeanOverhead({0.5, 0.5, 0.5}), 0.5, 1e-12);
}

TEST(Stats, GeomeanHandlesSpeedups)
{
    // (0.9 * 1.1)^(1/2) - 1 < 0.0 -- slight net speedup.
    double g = geomeanOverhead({-0.1, 0.1});
    EXPECT_LT(g, 0.0);
    EXPECT_NEAR(g, std::sqrt(0.9 * 1.1) - 1.0, 1e-12);
}

TEST(Stats, GeomeanZeroOverheadsIsZero)
{
    EXPECT_DOUBLE_EQ(geomeanOverhead({0.0, 0.0}), 0.0);
}

TEST(Stats, OverheadFraction)
{
    EXPECT_DOUBLE_EQ(overhead(150.0, 100.0), 0.5);
    EXPECT_DOUBLE_EQ(overhead(90.0, 100.0), -0.1);
}

TEST(Stats, PercentFormatting)
{
    EXPECT_EQ(percent(0.066), "6.6%");
    EXPECT_EQ(percent(-0.066), "-6.6%");
    EXPECT_EQ(percent(1.491), "149.1%");
    EXPECT_EQ(percent(0.12345, 2), "12.35%");
}

TEST(Stats, FixedStr)
{
    EXPECT_EQ(fixedStr(3.14159, 2), "3.14");
    EXPECT_EQ(fixedStr(0.5, 0), "0");
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(11);
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 9000; ++i)
        ++counts[rng.weightedIndex({1.0, 2.0, 6.0})];
    EXPECT_GT(counts[2], counts[1]);
    EXPECT_GT(counts[1], counts[0]);
    EXPECT_NEAR(counts[2] / 9000.0, 6.0 / 9.0, 0.05);
}

TEST(Rng, ZipfSkewsTowardLowIndices)
{
    Rng rng(13);
    int counts[8] = {};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.zipf(8, 1.0)];
    EXPECT_GT(counts[0], counts[3]);
    EXPECT_GT(counts[0], counts[7]);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"Test", "Value"});
    t.addRow({"null", "0.14"});
    t.addRow({"select_tcp", "9.38"});
    std::string out = t.render();
    EXPECT_NE(out.find("| Test"), std::string::npos);
    EXPECT_NE(out.find("| select_tcp | 9.38"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, SeparatorRows)
{
    Table t({"A"});
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    std::string out = t.render();
    // Header sep + top + bottom + explicit = 4 separator lines.
    size_t seps = 0;
    for (size_t pos = 0; (pos = out.find("|-", pos)) != std::string::npos;
         ++pos)
        ++seps;
    EXPECT_EQ(seps, 4u);
}

TEST(TableDeath, ArityMismatchPanics)
{
    Table t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row arity");
}

} // namespace
} // namespace pibe
