/** @file Unit and property tests for the scalar/CFG cleanup passes. */
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "opt/cleanup.h"
#include "tests/test_util.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;
using ir::Opcode;

size_t
countOpcode(const ir::Function& f, Opcode op)
{
    size_t n = 0;
    for (const auto& bb : f.blocks) {
        for (const auto& inst : bb.insts)
            n += (inst.op == op);
    }
    return n;
}

TEST(ConstantFold, FoldsBinOpsOverConstants)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    FunctionBuilder b(m, f);
    ir::Reg x = b.constI(6);
    ir::Reg y = b.constI(7);
    ir::Reg p = b.bin(BinKind::kMul, x, y);
    b.sink(p);
    b.ret(p);
    EXPECT_TRUE(opt::constantFold(m.func(f)));
    EXPECT_EQ(countOpcode(m.func(f), Opcode::kBinOp), 0u);
    EXPECT_EQ(test::runFunction(m, f, {}).result, 42);
}

TEST(ConstantFold, DoesNotFoldDivisionByZero)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg x = b.constI(6);
    ir::Reg y = b.constI(0);
    ir::Reg p = b.bin(BinKind::kDiv, x, y);
    // Guard so the division is never executed at run time.
    ir::BlockId dead = b.newBlock();
    ir::BlockId live = b.newBlock();
    (void)p;
    b.condBr(b.param(0), dead, live);
    b.setBlock(dead);
    b.ret(p);
    b.setBlock(live);
    b.ret(b.constI(1));
    opt::constantFold(m.func(f));
    // The div must still be a BinOp (not folded into some value).
    EXPECT_EQ(countOpcode(m.func(f), Opcode::kBinOp), 1u);
}

TEST(ConstantFold, CollapsesConstantCondBr)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    FunctionBuilder b(m, f);
    ir::Reg c = b.constI(1);
    ir::BlockId t = b.newBlock();
    ir::BlockId e = b.newBlock();
    b.condBr(c, t, e);
    b.setBlock(t);
    b.ret(b.constI(10));
    b.setBlock(e);
    b.ret(b.constI(20));
    EXPECT_TRUE(opt::constantFold(m.func(f)));
    EXPECT_EQ(countOpcode(m.func(f), Opcode::kCondBr), 0u);
    EXPECT_EQ(test::runFunction(m, f, {}).result, 10);
}

TEST(ConstantFold, CollapsesConstantSwitch)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    FunctionBuilder b(m, f);
    ir::Reg v = b.constI(2);
    ir::BlockId d = b.newBlock();
    ir::BlockId c1 = b.newBlock();
    ir::BlockId c2 = b.newBlock();
    b.switchOn(v, d, {{1, c1}, {2, c2}});
    b.setBlock(d);
    b.ret(b.constI(0));
    b.setBlock(c1);
    b.ret(b.constI(11));
    b.setBlock(c2);
    b.ret(b.constI(22));
    EXPECT_TRUE(opt::constantFold(m.func(f)));
    EXPECT_EQ(countOpcode(m.func(f), Opcode::kSwitch), 0u);
    EXPECT_EQ(test::runFunction(m, f, {}).result, 22);
}

TEST(ConstantFold, FactsDoNotLeakAcrossBlocks)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg x = b.newReg();
    b.setRegConst(x, 5);
    ir::BlockId loop = b.newBlock();
    ir::BlockId out = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    // x is redefined here from a param; a naive global fold of
    // "x == 5" would be wrong.
    ir::Reg dbl = b.bin(BinKind::kAdd, x, x);
    b.setReg(x, b.param(0));
    ir::Reg done = b.bin(BinKind::kGt, dbl, b.param(0));
    b.condBr(done, out, loop);
    b.setBlock(out);
    b.ret(dbl);
    opt::constantFold(m.func(f));
    EXPECT_EQ(test::runFunction(m, f, {3}).result, 10);
    EXPECT_EQ(test::runFunction(m, f, {12}).result, 24);
}

TEST(Dce, RemovesDeadComputation)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg dead1 = b.binImm(BinKind::kMul, b.param(0), 100);
    ir::Reg dead2 = b.bin(BinKind::kAdd, dead1, dead1);
    (void)dead2;
    ir::Reg live = b.binImm(BinKind::kAdd, b.param(0), 1);
    b.ret(live);
    EXPECT_TRUE(opt::deadCodeElim(m.func(f)));
    // Both dead binops and their const operands are gone.
    EXPECT_EQ(countOpcode(m.func(f), Opcode::kBinOp), 1u);
    EXPECT_EQ(test::runFunction(m, f, {4}).result, 5);
}

TEST(Dce, KeepsSideEffects)
{
    Module m;
    ir::FuncId callee = m.addFunction("callee", 0);
    {
        FunctionBuilder b(m, callee);
        b.sink(b.constI(7));
        b.ret(b.constI(0));
    }
    ir::FuncId f = m.addFunction("f", 0);
    FunctionBuilder b(m, f);
    ir::Reg unused = b.call(callee); // result unused, call must stay
    (void)unused;
    b.ret(b.constI(1));
    opt::deadCodeElim(m.func(f));
    EXPECT_EQ(countOpcode(m.func(f), Opcode::kCall), 1u);
}

TEST(Dce, KeepsStores)
{
    Module m;
    m.addGlobal("g", {0, 0});
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg zero = b.constI(0);
    b.store(0, zero, b.param(0));
    b.ret(b.constI(0));
    opt::deadCodeElim(m.func(f));
    EXPECT_EQ(countOpcode(m.func(f), Opcode::kStore), 1u);
}

TEST(SimplifyCfg, MergesLinearChains)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::BlockId b1 = b.newBlock();
    ir::BlockId b2 = b.newBlock();
    b.br(b1);
    b.setBlock(b1);
    ir::Reg r = b.binImm(BinKind::kAdd, b.param(0), 1);
    b.br(b2);
    b.setBlock(b2);
    b.ret(r);
    EXPECT_TRUE(opt::simplifyCfg(m.func(f)));
    EXPECT_EQ(m.func(f).blocks.size(), 1u);
    EXPECT_EQ(test::runFunction(m, f, {1}).result, 2);
}

TEST(SimplifyCfg, RemovesUnreachableBlocks)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    FunctionBuilder b(m, f);
    ir::BlockId orphan = b.newBlock();
    ir::BlockId tail = b.newBlock();
    b.br(tail);
    b.setBlock(orphan); // never branched to
    b.ret(b.constI(99));
    b.setBlock(tail);
    b.ret(b.constI(1));
    EXPECT_TRUE(opt::simplifyCfg(m.func(f)));
    EXPECT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runFunction(m, f, {}).result, 1);
    for (const auto& bb : m.func(f).blocks) {
        for (const auto& inst : bb.insts)
            EXPECT_NE(inst.imm, 99);
    }
}

TEST(SimplifyCfg, ThreadsTrivialJumpChains)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::BlockId hop1 = b.newBlock();
    ir::BlockId hop2 = b.newBlock();
    ir::BlockId target = b.newBlock();
    ir::BlockId other = b.newBlock();
    b.condBr(b.param(0), hop1, other);
    b.setBlock(hop1);
    b.br(hop2);
    b.setBlock(hop2);
    b.br(target);
    b.setBlock(target);
    b.ret(b.constI(7));
    b.setBlock(other);
    b.ret(b.constI(8));
    EXPECT_TRUE(opt::simplifyCfg(m.func(f)));
    EXPECT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runFunction(m, f, {1}).result, 7);
    EXPECT_EQ(test::runFunction(m, f, {0}).result, 8);
    EXPECT_LT(m.func(f).blocks.size(), 5u);
}

/** Property: cleanup preserves behaviour on random modules. */
class CleanupProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CleanupProperty, PreservesSemantics)
{
    test::GenConfig cfg;
    cfg.seed = GetParam();
    Module m = test::generateModule(cfg);
    ASSERT_TRUE(test::verifies(m));
    ir::FuncId main = test::generatedMain(m);

    auto before = test::runScript(m, main, test::argMatrix());
    opt::cleanupModule(m);
    ASSERT_TRUE(test::verifies(m));
    auto after = test::runScript(m, main, test::argMatrix());
    EXPECT_EQ(before, after);
}

TEST_P(CleanupProperty, IsIdempotentOnSemantics)
{
    test::GenConfig cfg;
    cfg.seed = GetParam() * 31 + 7;
    Module m = test::generateModule(cfg);
    opt::cleanupModule(m);
    auto once = test::runScript(m, test::generatedMain(m),
                                test::argMatrix());
    opt::cleanupModule(m);
    ASSERT_TRUE(test::verifies(m));
    auto twice = test::runScript(m, test::generatedMain(m),
                                 test::argMatrix());
    EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanupProperty,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
} // namespace pibe
