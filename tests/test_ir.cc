/** @file Unit tests for the PIR core: builder, verifier, printer. */
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/module.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "tests/test_util.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;
using ir::Opcode;

TEST(FuncAddr, RoundTrips)
{
    for (ir::FuncId f : {0u, 1u, 17u, 65535u}) {
        int64_t v = ir::funcAddrValue(f);
        EXPECT_TRUE(ir::isFuncAddrValue(v));
        EXPECT_EQ(ir::funcAddrTarget(v), f);
    }
}

TEST(FuncAddr, PlainIntegersAreNotFunctionValues)
{
    EXPECT_FALSE(ir::isFuncAddrValue(0));
    EXPECT_FALSE(ir::isFuncAddrValue(12345));
    EXPECT_FALSE(ir::isFuncAddrValue(-1));
}

TEST(Module, AddFunctionAssignsSequentialIds)
{
    Module m;
    EXPECT_EQ(m.addFunction("a", 0), 0u);
    EXPECT_EQ(m.addFunction("b", 2), 1u);
    EXPECT_EQ(m.findFunction("b"), 1u);
    EXPECT_EQ(m.findFunction("missing"), ir::kInvalidFunc);
    EXPECT_EQ(m.func(1).num_params, 2u);
}

TEST(ModuleDeath, DuplicateFunctionName)
{
    Module m;
    m.addFunction("dup", 0);
    EXPECT_DEATH(m.addFunction("dup", 1), "duplicate function");
}

TEST(Module, GlobalsHoldInitialValues)
{
    Module m;
    ir::GlobalId g = m.addGlobal("table", {1, 2, 3});
    EXPECT_EQ(m.global(g).init.size(), 3u);
    EXPECT_EQ(m.global(g).init[1], 2);
}

TEST(Module, SiteIdsAreModuleUnique)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    ir::FuncId g = m.addFunction("g", 0);
    {
        FunctionBuilder b(m, f);
        b.ret(b.constI(1));
    }
    {
        FunctionBuilder b(m, g);
        b.call(f);
        b.ret(b.constI(2));
    }
    EXPECT_TRUE(test::verifies(m));
    EXPECT_GE(m.siteIdBound(), 3u); // two rets + one call
}

TEST(Builder, SimpleFunctionVerifiesAndRuns)
{
    Module m;
    ir::FuncId f = m.addFunction("double_it", 1);
    FunctionBuilder b(m, f);
    ir::Reg r = b.binImm(BinKind::kMul, b.param(0), 2);
    b.ret(r);
    EXPECT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runFunction(m, f, {21}).result, 42);
}

TEST(Builder, FrameSlots)
{
    Module m;
    ir::FuncId f = m.addFunction("spill", 1);
    FunctionBuilder b(m, f);
    uint32_t slot = b.newFrameSlot();
    b.frameStore(slot, b.param(0));
    ir::Reg v = b.frameLoad(slot);
    b.ret(v);
    EXPECT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runFunction(m, f, {99}).result, 99);
    EXPECT_EQ(m.func(f).frame_size, 1u);
}

TEST(Builder, SetRegAssignsExistingRegister)
{
    Module m;
    ir::FuncId f = m.addFunction("loopish", 1);
    FunctionBuilder b(m, f);
    ir::Reg acc = b.newReg();
    b.setRegConst(acc, 5);
    b.setRegBin(acc, BinKind::kAdd, acc, b.param(0));
    b.ret(acc);
    EXPECT_EQ(test::runFunction(m, f, {10}).result, 15);
}

TEST(BuilderDeath, EmitPastTerminator)
{
    Module m;
    ir::FuncId f = m.addFunction("bad", 0);
    FunctionBuilder b(m, f);
    b.ret(b.constI(0));
    EXPECT_DEATH(b.constI(1), "past terminator");
}

TEST(Verifier, AcceptsWellFormedSwitch)
{
    Module m;
    ir::FuncId f = m.addFunction("sw", 1);
    FunctionBuilder b(m, f);
    ir::BlockId d = b.newBlock();
    ir::BlockId c1 = b.newBlock();
    b.switchOn(b.param(0), d, {{1, c1}});
    b.setBlock(d);
    b.ret(b.constI(0));
    b.setBlock(c1);
    b.ret(b.constI(1));
    EXPECT_TRUE(test::verifies(m));
}

TEST(Verifier, CatchesMissingTerminator)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    m.func(f).blocks.emplace_back();
    ir::Instruction i;
    i.op = Opcode::kConst;
    i.dst = 0;
    m.func(f).num_regs = 1;
    m.func(f).blocks[0].insts.push_back(i);
    auto problems = ir::verifyFunction(m, m.func(f));
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesBadRegister)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    m.func(f).blocks.emplace_back();
    ir::Instruction mv;
    mv.op = Opcode::kMove;
    mv.dst = 0;
    mv.a = 57; // out of range
    m.func(f).num_regs = 1;
    ir::Instruction ret;
    ret.op = Opcode::kRet;
    ret.site_id = m.allocSiteId();
    m.func(f).blocks[0].insts = {mv, ret};
    auto problems = ir::verifyFunction(m, m.func(f));
    ASSERT_FALSE(problems.empty());
}

TEST(Verifier, CatchesBadBranchTarget)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    m.func(f).blocks.emplace_back();
    ir::Instruction br;
    br.op = Opcode::kBr;
    br.t0 = 9;
    m.func(f).blocks[0].insts = {br};
    auto problems = ir::verifyFunction(m, m.func(f));
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("out of range"), std::string::npos);
}

TEST(Verifier, CatchesCallArityMismatch)
{
    Module m;
    ir::FuncId callee = m.addFunction("callee", 2);
    {
        FunctionBuilder b(m, callee);
        b.ret(b.param(0));
    }
    ir::FuncId f = m.addFunction("f", 0);
    m.func(f).blocks.emplace_back();
    ir::Instruction call;
    call.op = Opcode::kCall;
    call.callee = callee;
    call.dst = 0;
    call.site_id = m.allocSiteId();
    // Only one argument for a two-parameter callee.
    call.args = {0};
    m.func(f).num_regs = 1;
    ir::Instruction ret;
    ret.op = Opcode::kRet;
    ret.site_id = m.allocSiteId();
    m.func(f).blocks[0].insts = {call, ret};
    auto problems = ir::verifyFunction(m, m.func(f));
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("args"), std::string::npos);
}

TEST(Verifier, CatchesDuplicateSiteIds)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    {
        FunctionBuilder b(m, f);
        b.ret(b.constI(0));
    }
    ir::FuncId g = m.addFunction("g", 0);
    {
        FunctionBuilder b(m, g);
        b.ret(b.constI(0));
    }
    // Force g's ret to share f's site id.
    m.func(g).blocks[0].insts.back().site_id =
        m.func(f).blocks[0].insts.back().site_id;
    auto problems = ir::verifyModule(m);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("duplicate site id"), std::string::npos);
}

TEST(Verifier, CatchesFrameOutOfRange)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    m.func(f).blocks.emplace_back();
    m.func(f).num_regs = 1;
    ir::Instruction fl;
    fl.op = Opcode::kFrameLoad;
    fl.dst = 0;
    fl.imm = 3; // frame_size is 0
    ir::Instruction ret;
    ret.op = Opcode::kRet;
    ret.site_id = m.allocSiteId();
    m.func(f).blocks[0].insts = {fl, ret};
    auto problems = ir::verifyFunction(m, m.func(f));
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("frame"), std::string::npos);
}

TEST(Printer, InstructionRendering)
{
    Module m;
    ir::FuncId callee = m.addFunction("callee", 1);
    {
        FunctionBuilder b(m, callee);
        b.ret(b.param(0));
    }
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg r = b.call(callee, {b.param(0)});
    b.ret(r);
    std::string text = ir::printFunction(m, m.func(f));
    EXPECT_NE(text.find("call @callee(r0)"), std::string::npos);
    EXPECT_NE(text.find("!site"), std::string::npos);
    EXPECT_NE(text.find("func @f"), std::string::npos);
}

TEST(Printer, SchemeAnnotations)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg t = b.funcAddr(f);
    ir::Reg r = b.icall(t, {b.param(0)});
    b.ret(r);
    auto& icall = m.func(f).blocks[0].insts[1];
    icall.fwd_scheme = ir::FwdScheme::kFencedRetpoline;
    auto& ret = m.func(f).blocks[0].insts.back();
    ret.ret_scheme = ir::RetScheme::kReturnRetpoline;
    std::string text = ir::printFunction(m, m.func(f));
    EXPECT_NE(text.find("!fenced-retpoline"), std::string::npos);
    EXPECT_NE(text.find("!return-retpoline"), std::string::npos);
}

TEST(Printer, ModuleListsGlobals)
{
    Module m;
    m.addGlobal("kmem", std::vector<int64_t>(16, 0));
    std::string text = ir::printModule(m);
    EXPECT_NE(text.find("global @kmem[16]"), std::string::npos);
}

TEST(Printer, SchemeNames)
{
    EXPECT_STREQ(ir::fwdSchemeName(ir::FwdScheme::kRetpoline),
                 "retpoline");
    EXPECT_STREQ(ir::fwdSchemeName(ir::FwdScheme::kJumpSwitch),
                 "jump-switch");
    EXPECT_STREQ(ir::retSchemeName(ir::RetScheme::kFencedRet),
                 "fenced-ret");
    EXPECT_STREQ(ir::binKindName(ir::BinKind::kShl), "shl");
}

} // namespace
} // namespace pibe
