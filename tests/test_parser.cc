/** @file Tests for the PIR text parser (round-trip with the printer). */
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "kernel/kernel.h"
#include "tests/test_util.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;

/** print -> parse -> print must be a fixpoint. */
void
expectRoundTrip(const Module& m)
{
    std::string text = ir::printModule(m);
    Module parsed = ir::parseModule(text);
    EXPECT_TRUE(test::verifies(parsed));
    EXPECT_EQ(ir::printModule(parsed), text);
}

TEST(Parser, RoundTripsEveryInstructionKind)
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 2, ir::kAttrNoInline);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.bin(BinKind::kAdd, b.param(0), b.param(1)));
    }
    m.addGlobal("table", {ir::funcAddrValue(leaf), 0, -7});
    ir::FuncId f = m.addFunction("everything", 2);
    FunctionBuilder b(m, f);
    uint32_t slot = b.newFrameSlot();
    ir::Reg c = b.constI(-42);
    ir::Reg mv = b.move(c);
    ir::Reg sum = b.bin(BinKind::kXor, mv, b.param(0));
    ir::Reg fa = b.funcAddr(leaf);
    ir::Reg ld = b.load(0, b.param(1), 1);
    b.store(0, b.param(1), ld, 2);
    b.frameStore(slot, sum);
    ir::Reg fl = b.frameLoad(slot);
    ir::Reg call = b.call(leaf, {fl, sum});
    ir::Reg icall = b.icall(fa, {call, ld}, /*is_asm=*/true);
    b.sink(icall);
    ir::BlockId t1 = b.newBlock();
    ir::BlockId t2 = b.newBlock();
    ir::BlockId t3 = b.newBlock();
    b.switchOn(icall, t1, {{-3, t2}, {9, t3}}, /*is_asm=*/true);
    b.setBlock(t1);
    b.condBr(sum, t2, t3);
    b.setBlock(t2);
    b.br(t3);
    b.setBlock(t3);
    b.ret(icall);
    ASSERT_TRUE(test::verifies(m));
    expectRoundTrip(m);
}

TEST(Parser, RoundTripsSchemesAndAttributes)
{
    Module m;
    ir::FuncId boot =
        m.addFunction("boot_fn", 0,
                      ir::kAttrBootSection | ir::kAttrOptNone);
    {
        FunctionBuilder b(m, boot);
        b.ret(b.constI(0));
    }
    m.addFunction("ext", 3, ir::kAttrExternal); // declaration
    ir::FuncId f = m.addFunction("hardened", 1);
    FunctionBuilder b(m, f);
    ir::Reg t = b.funcAddr(boot);
    ir::Reg r = b.icall(t, {});
    b.sink(r);
    b.ret(b.param(0));
    // Tag schemes directly.
    auto& insts = m.func(f).blocks[0].insts;
    insts[1].fwd_scheme = ir::FwdScheme::kFencedRetpoline;
    insts.back().ret_scheme = ir::RetScheme::kFencedRet;
    expectRoundTrip(m);

    Module parsed = ir::parseModule(ir::printModule(m));
    EXPECT_TRUE(parsed.func(parsed.findFunction("ext"))
                    .hasAttr(ir::kAttrExternal));
    EXPECT_TRUE(parsed.func(parsed.findFunction("ext")).isDeclaration());
    const auto& pinsts =
        parsed.func(parsed.findFunction("hardened")).blocks[0].insts;
    EXPECT_EQ(pinsts[1].fwd_scheme, ir::FwdScheme::kFencedRetpoline);
    EXPECT_EQ(pinsts.back().ret_scheme, ir::RetScheme::kFencedRet);
}

TEST(Parser, PreservesSiteIds)
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 0);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.constI(1));
    }
    ir::FuncId f = m.addFunction("caller", 0);
    {
        FunctionBuilder b(m, f);
        ir::Reg r = b.call(leaf);
        b.ret(r);
    }
    Module parsed = ir::parseModule(ir::printModule(m));
    EXPECT_EQ(parsed.func(1).blocks[0].insts[0].site_id,
              m.func(1).blocks[0].insts[0].site_id);
    // Fresh allocations must not collide with parsed ids.
    EXPECT_GE(parsed.allocSiteId(), m.siteIdBound());
}

TEST(Parser, GlobalSparseInitializers)
{
    Module m;
    std::vector<int64_t> init(100, 0);
    init[3] = 17;
    init[99] = -5;
    m.addGlobal("sparse", std::move(init));
    Module parsed = ir::parseModule(ir::printModule(m));
    EXPECT_EQ(parsed.global(0).init.size(), 100u);
    EXPECT_EQ(parsed.global(0).init[3], 17);
    EXPECT_EQ(parsed.global(0).init[99], -5);
    EXPECT_EQ(parsed.global(0).init[50], 0);
}

TEST(Parser, ParsedModuleBehavesIdentically)
{
    test::GenConfig cfg;
    cfg.seed = 99;
    Module m = test::generateModule(cfg);
    Module parsed = ir::parseModule(ir::printModule(m));
    ir::FuncId main = test::generatedMain(m);
    EXPECT_EQ(test::runScript(m, main, test::argMatrix()),
              test::runScript(parsed, test::generatedMain(parsed),
                              test::argMatrix()));
}

/** Property: round-trip holds across generated modules. */
class ParserProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ParserProperty, RoundTrip)
{
    test::GenConfig cfg;
    cfg.seed = GetParam();
    Module m = test::generateModule(cfg);
    expectRoundTrip(m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserProperty,
                         ::testing::Range<uint64_t>(1, 13));

TEST(Parser, RoundTripsTheEntireKernel)
{
    kernel::KernelConfig cfg;
    cfg.num_drivers = 8;
    kernel::KernelImage k = kernel::buildKernel(cfg);
    std::string text = ir::printModule(k.module);
    Module parsed = ir::parseModule(text);
    EXPECT_TRUE(test::verifies(parsed));
    EXPECT_EQ(ir::printModule(parsed), text);
    EXPECT_EQ(parsed.numFunctions(), k.module.numFunctions());
}

TEST(ParserDeath, UnknownOpcode)
{
    EXPECT_DEATH(ir::parseModule("func @f(params=0, regs=1, frame=0) {\n"
                                 "bb0:\n"
                                 "    r0 = quux r0, r0\n"
                                 "}\n"),
                 "unknown opcode");
}

TEST(ParserDeath, UnknownFunctionReference)
{
    EXPECT_DEATH(
        ir::parseModule("func @f(params=0, regs=1, frame=0) {\n"
                        "bb0:\n"
                        "    r0 = call @missing()\n"
                        "}\n"),
        "unknown function");
}

TEST(ParserDeath, NonSequentialBlocks)
{
    EXPECT_DEATH(ir::parseModule("func @f(params=0, regs=1, frame=0) {\n"
                                 "bb1:\n"
                                 "    ret !site 0\n"
                                 "}\n"),
                 "non-sequential");
}

TEST(ParserDeath, InitializerOutOfRange)
{
    EXPECT_DEATH(ir::parseModule("global @g[4] { 9: 1 }\n"),
                 "out of range");
}

TEST(ParserDeath, TrailingGarbage)
{
    EXPECT_DEATH(ir::parseModule("func @f(params=0, regs=1, frame=0) {\n"
                                 "bb0:\n"
                                 "    ret !site 0 junk\n"
                                 "}\n"),
                 "trailing tokens");
}

} // namespace
} // namespace pibe
