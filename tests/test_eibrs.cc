/** @file Tests for the eIBRS hardware-mitigation model (§6.4). */
#include <gtest/gtest.h>

#include "harden/harden.h"
#include "ir/builder.h"
#include "tests/test_util.h"
#include "uarch/simulator.h"
#include "uarch/speculation.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;

struct Victim
{
    Module m;
    ir::FuncId entry;
    ir::FuncId gadget;
};

Victim
makeVictim()
{
    Victim v;
    ir::FuncId leaf = v.m.addFunction("leaf", 1);
    {
        FunctionBuilder b(v.m, leaf);
        b.ret(b.param(0));
    }
    v.gadget = v.m.addFunction("gadget", 1);
    {
        FunctionBuilder b(v.m, v.gadget);
        b.sink(b.param(0));
        b.ret(b.constI(0));
    }
    v.m.addGlobal("t", {ir::funcAddrValue(leaf)});
    v.entry = v.m.addFunction("entry", 1);
    FunctionBuilder b(v.m, v.entry);
    ir::Reg z = b.constI(0);
    ir::Reg t = b.load(0, z);
    ir::Reg r = b.icall(t, {b.param(0)});
    b.ret(r);
    return v;
}

uint64_t
v2Hits(bool eibrs, bool same_mode)
{
    Victim v = makeVictim();
    uarch::CostParams params;
    params.eibrs = eibrs;
    uarch::Simulator sim(v.m, params);
    uarch::TransientAttacker attacker(uarch::AttackKind::kSpectreV2,
                                      sim.layout().funcBase(v.gadget));
    attacker.setEibrs(eibrs, same_mode);
    sim.setObserver(&attacker);
    for (int i = 0; i < 100; ++i)
        sim.run(v.entry, {i});
    return attacker.forwardHits();
}

TEST(Eibrs, BlocksCrossPrivilegeTraining)
{
    EXPECT_GT(v2Hits(false, false), 0u);
    EXPECT_EQ(v2Hits(true, false), 0u);
}

TEST(Eibrs, DoesNotBlockSameModeTraining)
{
    EXPECT_GT(v2Hits(true, true), 0u);
}

TEST(Eibrs, RetpolinesBlockBothTrainingModes)
{
    for (bool same_mode : {false, true}) {
        Victim v = makeVictim();
        harden::applyDefenses(v.m,
                              harden::DefenseConfig::retpolinesOnly());
        uarch::Simulator sim(v.m);
        uarch::TransientAttacker attacker(
            uarch::AttackKind::kSpectreV2,
            sim.layout().funcBase(v.gadget));
        attacker.setEibrs(false, same_mode);
        sim.setObserver(&attacker);
        for (int i = 0; i < 100; ++i)
            sim.run(v.entry, {i});
        EXPECT_EQ(attacker.forwardHits(), 0u);
    }
}

TEST(Eibrs, TaxesEveryUnhardenedIndirectBranch)
{
    Victim v = makeVictim();
    auto cycles = [&](bool eibrs) {
        uarch::CostParams params;
        params.eibrs = eibrs;
        uarch::Simulator sim(v.m, params);
        for (int i = 0; i < 50; ++i)
            sim.run(v.entry, {i});
        sim.clearStats();
        for (int i = 0; i < 100; ++i)
            sim.run(v.entry, {i});
        return sim.stats().cycles;
    };
    uint64_t plain = cycles(false);
    uint64_t taxed = cycles(true);
    EXPECT_EQ(taxed - plain,
              100u * uarch::CostParams{}.cost_eibrs_branch);
}

TEST(Eibrs, DoesNotTaxRetpolines)
{
    // Thunked branches do not consult the BTB, so eIBRS adds nothing.
    Victim v = makeVictim();
    harden::applyDefenses(v.m, harden::DefenseConfig::retpolinesOnly());
    auto cycles = [&](bool eibrs) {
        uarch::CostParams params;
        params.eibrs = eibrs;
        uarch::Simulator sim(v.m, params);
        for (int i = 0; i < 100; ++i)
            sim.run(v.entry, {i});
        return sim.stats().cycles;
    };
    EXPECT_EQ(cycles(false), cycles(true));
}

} // namespace
} // namespace pibe
