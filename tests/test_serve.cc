/**
 * @file
 * Tests for the serve subsystem (src/serve) and the shared cache tier
 * it leans on: JSON/protocol round trips, single-flight batching, LRU
 * eviction under byte budgets, two-process disk-cache contention,
 * metrics accuracy, the control plane, and the daemon's end-to-end
 * guarantee that a served answer is bit-identical to a direct engine
 * computation of the same request.
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/checks.h"
#include "ir/parser.h"
#include "pibe/engine.h"
#include "profile/serialize.h"
#include "runtime/artifact_cache.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/control.h"
#include "serve/json.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace pibe {
namespace {

namespace fs = std::filesystem;
using runtime::ArtifactCache;
using serve::BatchRole;
using serve::Batcher;
using serve::Json;

/** Fresh scratch directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string& tag)
        : path_(fs::temp_directory_path() /
                ("pibe_serve_test_" + tag + "_" +
                 std::to_string(::getpid())))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }

    ~TempDir() { fs::remove_all(path_); }

    const fs::path& path() const { return path_; }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

// ---------------------------------------------------------------------
// JSON

TEST(ServeJson, ParseDumpRoundTrip)
{
    const std::string text =
        R"({"a":[1,2.5,"x",true,null],"b":{"nested":"\"quoted\""},"n":-7})";
    std::optional<Json> parsed = Json::parse(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ((*parsed)["n"].asInt(), -7);
    EXPECT_EQ((*parsed)["a"].at(1).asDouble(), 2.5);
    EXPECT_EQ((*parsed)["a"].at(2).asString(), "x");
    EXPECT_TRUE((*parsed)["a"].at(3).asBool());
    EXPECT_TRUE((*parsed)["a"].at(4).isNull());
    EXPECT_EQ((*parsed)["b"]["nested"].asString(), "\"quoted\"");
    // Dump is canonical: re-parsing the dump dumps identically.
    std::optional<Json> again = Json::parse(parsed->dump());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->dump(), parsed->dump());
}

TEST(ServeJson, RejectsMalformedInput)
{
    EXPECT_FALSE(Json::parse("").has_value());
    EXPECT_FALSE(Json::parse("{").has_value());
    EXPECT_FALSE(Json::parse("{\"a\":1} trailing").has_value());
    EXPECT_FALSE(Json::parse("{'single':1}").has_value());
    EXPECT_FALSE(Json::parse("nul").has_value());
    // Depth bomb must be rejected, not crash the parser.
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    EXPECT_FALSE(Json::parse(deep).has_value());
}

TEST(ServeJson, DoublesAndIntegersRoundTripExactly)
{
    const double awkward = 0.56423000000000001;
    Json obj = Json::object();
    obj.set("d", awkward);
    obj.set("i", static_cast<int64_t>(1772326887));
    std::optional<Json> parsed = Json::parse(obj.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(std::bit_cast<uint64_t>((*parsed)["d"].asDouble()),
              std::bit_cast<uint64_t>(awkward));
    // Integers stay integers (no exponent, no fraction).
    EXPECT_NE(obj.dump().find("1772326887"), std::string::npos);
    EXPECT_EQ((*parsed)["i"].asInt(), 1772326887);
}

// ---------------------------------------------------------------------
// Protocol framing

TEST(ServeProtocol, FrameRoundTripOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string payload(100000, 'x');
    ASSERT_TRUE(serve::writeFrame(fds[0], "hello"));
    std::thread writer(
        [&] { serve::writeFrame(fds[0], payload); });
    std::optional<std::string> first = serve::readFrame(fds[1]);
    std::optional<std::string> second = serve::readFrame(fds[1]);
    writer.join();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, "hello");
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*second, payload);
    // EOF reads as nullopt, not an error or a hang.
    ::close(fds[0]);
    EXPECT_FALSE(serve::readFrame(fds[1]).has_value());
    ::close(fds[1]);
}

TEST(ServeProtocol, OversizedFrameRejected)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // A hostile length prefix larger than kMaxFrameBytes must be
    // refused before any allocation of that size.
    const uint32_t huge = serve::kMaxFrameBytes + 1;
    const unsigned char prefix[4] = {
        static_cast<unsigned char>(huge >> 24),
        static_cast<unsigned char>(huge >> 16),
        static_cast<unsigned char>(huge >> 8),
        static_cast<unsigned char>(huge)};
    ASSERT_EQ(::send(fds[0], prefix, 4, 0), 4);
    EXPECT_FALSE(serve::readFrame(fds[1]).has_value());
    EXPECT_FALSE(
        serve::writeFrame(fds[0],
                          std::string(serve::kMaxFrameBytes + 1, 'x')));
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(ServeProtocol, EnvelopeHelpers)
{
    Json params = Json::object();
    params.set("workload", "read");
    const Json req = serve::makeRequest(7, "measure", params);
    EXPECT_EQ(req["id"].asInt(), 7);
    EXPECT_EQ(req["op"].asString(), "measure");
    EXPECT_EQ(req["params"]["workload"].asString(), "read");

    const Json ok = serve::makeResponse(7, Json::object());
    EXPECT_TRUE(ok["ok"].asBool(false));
    EXPECT_EQ(ok["id"].asInt(), 7);

    const Json err = serve::makeErrorResponse(7, "boom");
    EXPECT_FALSE(err["ok"].asBool(true));
    EXPECT_EQ(err["error"].asString(), "boom");
}

// ---------------------------------------------------------------------
// Batcher

TEST(ServeBatcher, CoalescesConcurrentCallers)
{
    Batcher<int> batcher;
    std::atomic<int> computes{0};
    std::atomic<int> started{0};
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<int> results(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            started.fetch_add(1);
            results[t] = batcher.run("key", [&] {
                // Hold the flight open until every thread has had a
                // chance to join it.
                while (started.load() < kThreads)
                    std::this_thread::yield();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                return computes.fetch_add(1) + 41;
            });
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(computes.load(), 1);
    for (int r : results)
        EXPECT_EQ(r, 41);
    EXPECT_EQ(batcher.flights(), 1u);
    EXPECT_EQ(batcher.coalescedCalls(),
              static_cast<uint64_t>(kThreads - 1));
    // The flight is gone: a later call computes afresh.
    EXPECT_EQ(batcher.run("key", [&] {
        return computes.fetch_add(1) + 41;
    }), 42);
}

TEST(ServeBatcher, LeaderExceptionReachesFollowers)
{
    Batcher<int> batcher;
    std::atomic<bool> follower_in{false};
    std::thread leader([&] {
        EXPECT_THROW(batcher.run("k",
                                 [&]() -> int {
                                     while (!follower_in.load())
                                         std::this_thread::yield();
                                     std::this_thread::sleep_for(
                                         std::chrono::milliseconds(
                                             10));
                                     throw std::runtime_error("boom");
                                 }),
                     std::runtime_error);
    });
    std::thread follower([&] {
        follower_in.store(true);
        try {
            BatchRole role;
            batcher.run("k", [] { return 0; }, &role);
            // A leader role is legal if the flight already unwound.
            EXPECT_EQ(role, BatchRole::kLeader);
        } catch (const std::runtime_error&) {
            // Follower of the throwing flight: expected.
        }
    });
    leader.join();
    follower.join();
}

// ---------------------------------------------------------------------
// Shared cache tier: LRU eviction

TEST(ServeCacheLru, MemoryEvictionUnderTightBudget)
{
    ArtifactCache cache;
    cache.setMemoryBudget(250); // fits two 100-byte artifacts
    cache.put("a", std::string(100, 'a'));
    cache.put("b", std::string(100, 'b'));
    EXPECT_TRUE(cache.get("a").has_value()); // refresh a's recency
    cache.put("c", std::string(100, 'c'));   // evicts b (LRU)
    EXPECT_TRUE(cache.get("a").has_value());
    EXPECT_TRUE(cache.get("c").has_value());
    EXPECT_FALSE(cache.get("b").has_value());
    const runtime::CacheStats stats = cache.stats();
    EXPECT_EQ(stats.mem_evictions, 1u);
    EXPECT_LE(stats.mem_bytes, 250u);
}

TEST(ServeCacheLru, DiskEvictionUnderTightBudget)
{
    TempDir dir("disk_lru");
    ArtifactCache cache;
    cache.setDiskDir(dir.str());
    cache.setDiskBudget(2500); // fits two 1000-byte artifacts
    cache.put("old", std::string(1000, 'o'));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.put("mid", std::string(1000, 'm'));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Touch "old" through a disk hit from a second cache instance so
    // its mtime-recency is refreshed across "processes".
    {
        ArtifactCache other;
        other.setDiskDir(dir.str());
        EXPECT_TRUE(other.get("old").has_value());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.put("new", std::string(1000, 'n')); // evicts "mid"
    const runtime::CacheStats stats = cache.stats();
    EXPECT_GE(stats.disk_evictions, 1u);
    EXPECT_GE(stats.evicted_bytes, 1000u);
    EXPECT_TRUE(fs::exists(dir.path() / "old.art"));
    EXPECT_TRUE(fs::exists(dir.path() / "new.art"));
    EXPECT_FALSE(fs::exists(dir.path() / "mid.art"));
}

TEST(ServeCacheLru, PublishIsAtomicNoTempVisibleAsArtifact)
{
    TempDir dir("atomic");
    ArtifactCache cache;
    cache.setDiskDir(dir.str());
    cache.put("k", "value");
    size_t artifacts = 0;
    for (const auto& entry : fs::directory_iterator(dir.path())) {
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") != std::string::npos)
            ADD_FAILURE() << "temp file left behind: " << name;
        artifacts += name.size() > 4 &&
                     name.substr(name.size() - 4) == ".art";
    }
    EXPECT_EQ(artifacts, 1u);
    ArtifactCache reader;
    reader.setDiskDir(dir.str());
    EXPECT_EQ(reader.get("k"), "value");
}

// ---------------------------------------------------------------------
// Shared cache tier: two processes on one directory

TEST(ServeCacheSharing, TwoProcessContentionNeverCorrupts)
{
    TempDir dir("two_proc");
    constexpr int kKeys = 40;
    const auto valueFor = [](int i) {
        return std::string(500 + 17 * i,
                           static_cast<char>('a' + (i % 26)));
    };

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: hammer the same directory with a tight budget so
        // eviction (under the flock) races the parent's writes.
        int bad = 0;
        {
            ArtifactCache cache;
            cache.setDiskDir(dir.str());
            cache.setDiskBudget(12000);
            for (int round = 0; round < 3; ++round) {
                for (int i = 0; i < kKeys; ++i) {
                    const std::string key =
                        "key" + std::to_string(i);
                    cache.put(key, valueFor(i));
                    std::optional<std::string> got = cache.get(key);
                    // Evicted is fine; truncated/corrupt is not.
                    if (got && *got != valueFor(i))
                        ++bad;
                }
            }
        }
        ::_exit(bad == 0 ? 0 : 1);
    }

    ArtifactCache cache;
    cache.setDiskDir(dir.str());
    cache.setDiskBudget(12000);
    for (int round = 0; round < 3; ++round) {
        for (int i = kKeys - 1; i >= 0; --i) {
            const std::string key = "key" + std::to_string(i);
            cache.put(key, valueFor(i));
            std::optional<std::string> got = cache.get(key);
            if (got)
                EXPECT_EQ(*got, valueFor(i)) << key;
        }
    }

    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    // Post-mortem: every surviving artifact is complete and no temp
    // droppings remain.
    ArtifactCache reader;
    reader.setDiskDir(dir.str());
    for (int i = 0; i < kKeys; ++i) {
        std::optional<std::string> got =
            reader.get("key" + std::to_string(i));
        if (got)
            EXPECT_EQ(*got, valueFor(i));
    }
    for (const auto& entry : fs::directory_iterator(dir.path())) {
        const std::string name = entry.path().filename().string();
        EXPECT_EQ(name.find(".tmp."), std::string::npos)
            << "temp file left behind: " << name;
    }
}

// ---------------------------------------------------------------------
// Metrics

TEST(ServeMetricsCounters, AccurateAfterScriptedHitsAndMisses)
{
    TempDir dir("metrics");
    ArtifactCache cache;
    cache.setDiskDir(dir.str());

    // Scripted traffic: 2 misses, 2 puts, 1 memory hit, 1 disk hit
    // (fresh instance sharing the directory sees no memory tier).
    EXPECT_FALSE(cache.get("x").has_value());
    EXPECT_FALSE(cache.get("y").has_value());
    cache.put("x", "xv");
    cache.put("y", "yv");
    EXPECT_TRUE(cache.get("x").has_value());
    ArtifactCache second;
    second.setDiskDir(dir.str());
    EXPECT_TRUE(second.get("y").has_value());

    const runtime::CacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.puts, 2u);
    EXPECT_EQ(stats.mem_hits, 1u);
    EXPECT_EQ(second.stats().disk_hits, 1u);
    EXPECT_EQ(stats.hits() + stats.misses, stats.lookups());

    serve::ServeMetrics metrics;
    metrics.recordConnection();
    metrics.enterRequest();
    metrics.recordRequest("measure", true, 10.0, false);
    metrics.recordRequest("measure", true, 30.0, true);
    metrics.recordRequest("optimize", false, 5.0, false);
    metrics.leaveRequest();
    metrics.recordAdmissionWait(2.5);

    const serve::MetricsSnapshot snap = metrics.snapshot(stats);
    EXPECT_EQ(snap.requests, 3u);
    EXPECT_EQ(snap.failures, 1u);
    EXPECT_EQ(snap.coalesced, 1u);
    EXPECT_EQ(snap.connections, 1u);
    EXPECT_EQ(snap.peak_inflight, 1u);
    EXPECT_EQ(snap.inflight, 0u);
    EXPECT_DOUBLE_EQ(snap.admission_wait_ms_total, 2.5);
    ASSERT_EQ(snap.by_op.count("measure"), 1u);
    EXPECT_EQ(snap.by_op.at("measure").requests, 2u);
    EXPECT_EQ(snap.by_op.at("measure").coalesced, 1u);
    EXPECT_DOUBLE_EQ(snap.by_op.at("measure").ms_total, 40.0);
    EXPECT_EQ(snap.by_op.at("optimize").failures, 1u);
    EXPECT_EQ(snap.cache.misses, 2u);
    // p50 of {10, 30, 5} is 10; p99 is 30.
    EXPECT_DOUBLE_EQ(snap.p50_ms, 10.0);
    EXPECT_DOUBLE_EQ(snap.p99_ms, 30.0);

    const std::string text = snap.renderText();
    EXPECT_NE(text.find("pibe_serve_requests_total 3"),
              std::string::npos);
    EXPECT_NE(text.find("pibe_cache_misses_total 2"),
              std::string::npos);

    const Json json = snap.toJson();
    EXPECT_EQ(json["requests"].asInt(), 3);
    EXPECT_EQ(json["by_op"]["measure"]["requests"].asInt(), 2);
}

// ---------------------------------------------------------------------
// Control plane

TEST(ServeControl, GetSetValidateAndList)
{
    serve::ControlPlane control;
    std::string mode = "fast";
    control.registerKnob(
        "mode", "test knob", [&] { return mode; },
        [&](const std::string& v) -> std::optional<std::string> {
            if (v != "fast" && v != "safe")
                return "mode must be fast or safe";
            mode = v;
            return std::nullopt;
        });

    EXPECT_EQ(control.get("mode"), "fast");
    EXPECT_FALSE(control.get("missing").has_value());
    EXPECT_FALSE(control.set("mode", "safe").has_value());
    EXPECT_EQ(mode, "safe");
    // Validation failure leaves the knob untouched.
    std::optional<std::string> err = control.set("mode", "bogus");
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(mode, "safe");
    EXPECT_TRUE(control.set("missing", "x").has_value());

    const Json list = control.list();
    EXPECT_EQ(list["mode"]["value"].asString(), "safe");
    EXPECT_EQ(list["mode"]["description"].asString(), "test knob");
}

// ---------------------------------------------------------------------
// End-to-end: in-process daemon vs direct engine computation

/** Small, fast daemon configuration shared by the e2e tests. */
serve::ServeOptions
tinyServeOptions()
{
    serve::ServeOptions opts;
    opts.socket_path.clear(); // handle() directly, no listeners
    opts.jobs = 2;
    opts.kernel.num_drivers = 6;
    opts.profile_base_iters = 10;
    return opts;
}

Json
callServer(serve::Server& server, const std::string& op, Json params)
{
    const Json response =
        server.handle(serve::makeRequest(1, op, std::move(params)));
    EXPECT_TRUE(response["ok"].asBool(false))
        << op << " failed: " << response["error"].asString();
    return response["result"];
}

TEST(ServeServer, MeasureBitIdenticalToDirectEngineCall)
{
    serve::ServeOptions opts = tinyServeOptions();
    serve::Server server(opts);

    Json params = Json::object();
    params.set("workload", "read");
    params.set("defense", "retpolines");
    const Json served = callServer(server, "measure", params);

    // The same request computed directly through the staged entry
    // points (what the one-shot CLI does).
    ArtifactCache cache;
    const std::string kernel_text =
        core::kernelTextCached(opts.kernel, &cache);
    const ir::Module kernel = ir::parseModule(kernel_text);
    const kernel::KernelInfo info =
        kernel::kernelInfoFromModule(kernel);
    const std::string profile_text = core::profileTextCached(
        kernel_text, kernel, info, opts.profile_base_iters, &cache);
    const profile::EdgeProfile profile =
        profile::liftProfile(kernel, profile_text);
    const std::string image_text = core::imageTextCached(
        kernel_text, kernel, profile_text, profile, core::OptConfig{},
        *harden::defenseByName("retpolines"), &cache);
    const ir::Module image = ir::parseModule(image_text);
    const core::Measurement direct = core::measureWorkloadCached(
        image_text,
        std::make_shared<const uarch::DecodedModule>(image),
        kernel::kernelInfoFromModule(image), "read",
        core::MeasureConfig{}, &cache);

    EXPECT_EQ(served["latency_bits"].asString(),
              std::to_string(
                  std::bit_cast<uint64_t>(direct.latency_us)));
    EXPECT_EQ(served["ops_bits"].asString(),
              std::to_string(
                  std::bit_cast<uint64_t>(direct.ops_per_sec)));
    // And the protocol's JSON doubles round-trip the same values.
    EXPECT_EQ(std::bit_cast<uint64_t>(served["latency_us"].asDouble()),
              std::bit_cast<uint64_t>(direct.latency_us));

    // A repeat of the same request is a pure cache hit with the same
    // image key and the same bits.
    const Json again = callServer(server, "measure", params);
    EXPECT_EQ(again["latency_bits"].asString(),
              served["latency_bits"].asString());
    EXPECT_EQ(again["image"].asString(), served["image"].asString());
}

TEST(ServeServer, RequestValidationAndControlKnobs)
{
    serve::Server server(tinyServeOptions());

    // Unknown op, workload, and defense all answer with ok=false —
    // never a crash, never a closed connection.
    Json bad_op = server.handle(
        serve::makeRequest(1, "frobnicate", Json::object()));
    EXPECT_FALSE(bad_op["ok"].asBool(true));

    Json params = Json::object();
    params.set("workload", "not_a_workload");
    Json bad_wl =
        server.handle(serve::makeRequest(2, "measure", params));
    EXPECT_FALSE(bad_wl["ok"].asBool(true));

    params = Json::object();
    params.set("defense", "not_a_defense");
    Json bad_def =
        server.handle(serve::makeRequest(3, "optimize", params));
    EXPECT_FALSE(bad_def["ok"].asBool(true));

    params = Json::object();
    params.set("icp_budget", 3.5);
    Json bad_budget =
        server.handle(serve::makeRequest(4, "optimize", params));
    EXPECT_FALSE(bad_budget["ok"].asBool(true));

    // config get/set round trip, with validation.
    params = Json::object();
    params.set("action", "set");
    params.set("name", "default_defense");
    params.set("value", "retpolines");
    callServer(server, "config", params);
    params = Json::object();
    params.set("action", "get");
    params.set("name", "default_defense");
    EXPECT_EQ(callServer(server, "config", params)["value"].asString(),
              "retpolines");
    params = Json::object();
    params.set("action", "set");
    params.set("name", "max_inflight");
    params.set("value", "not_a_number");
    Json bad_set =
        server.handle(serve::makeRequest(5, "config", params));
    EXPECT_FALSE(bad_set["ok"].asBool(true));

    // Metrics saw every request above.
    const Json metrics =
        callServer(server, "metrics", Json::object());
    EXPECT_GE(metrics["requests"].asInt(), 7);
    EXPECT_GE(metrics["failures"].asInt(), 4);
}

TEST(ServeServer, CheckFailOnPolicyMatchesDirectOutcome)
{
    serve::Server server(tinyServeOptions());

    // An unhardened image audited for full coverage yields warnings
    // but no errors — the canonical case where --fail-on matters.
    Json params = Json::object();
    params.set("defense", "none");
    params.set("fail_on", "error");
    const Json lenient = callServer(server, "check", params);
    params.set("fail_on", "warn");
    const Json strict = callServer(server, "check", params);

    ASSERT_GT(lenient["warnings"].asInt(), 0);
    EXPECT_EQ(lenient["errors"].asInt(), 0);
    EXPECT_TRUE(lenient["passed"].asBool(false));
    EXPECT_FALSE(strict["passed"].asBool(true));

    // The daemon's verdict must equal runChecksWithPolicy's — they
    // are the same entry point (the `pibe check` exit-code fix).
    ArtifactCache cache;
    const serve::ServeOptions& opts = server.options();
    const std::string kernel_text =
        core::kernelTextCached(opts.kernel, &cache);
    const ir::Module kernel = ir::parseModule(kernel_text);
    const kernel::KernelInfo info =
        kernel::kernelInfoFromModule(kernel);
    const std::string profile_text = core::profileTextCached(
        kernel_text, kernel, info, opts.profile_base_iters, &cache);
    const profile::EdgeProfile profile =
        profile::liftProfile(kernel, profile_text);
    const std::string image_text = core::imageTextCached(
        kernel_text, kernel, profile_text, profile, core::OptConfig{},
        *harden::defenseByName("none"), &cache);
    const ir::Module image = ir::parseModule(image_text);
    check::CheckOptions copts;
    copts.coverage = true;
    copts.defense = *harden::defenseByName("none");
    const check::CheckOutcome at_error = check::runChecksWithPolicy(
        image, copts, check::Severity::kError);
    const check::CheckOutcome at_warn = check::runChecksWithPolicy(
        image, copts, check::Severity::kWarning);
    EXPECT_EQ(at_error.passed, lenient["passed"].asBool(false));
    EXPECT_EQ(at_warn.passed, strict["passed"].asBool(true));
    EXPECT_EQ(static_cast<int64_t>(at_error.report.warnings()),
              lenient["warnings"].asInt());
}

TEST(ServeServer, SeverityNamesParse)
{
    EXPECT_EQ(check::severityFromName("note"),
              check::Severity::kNote);
    EXPECT_EQ(check::severityFromName("warn"),
              check::Severity::kWarning);
    EXPECT_EQ(check::severityFromName("warning"),
              check::Severity::kWarning);
    EXPECT_EQ(check::severityFromName("error"),
              check::Severity::kError);
    EXPECT_FALSE(check::severityFromName("fatal").has_value());
    EXPECT_FALSE(check::severityFromName("").has_value());
}

// ---------------------------------------------------------------------
// TCP auth token

TEST(ServeAuth, TcpConnectionsAreTokenGated)
{
    serve::ServeOptions opts = tinyServeOptions();
    opts.socket_path.clear();
    opts.tcp_port = 0; // ephemeral
    opts.auth_token = "sekrit";
    serve::Server server(std::move(opts));
    ASSERT_TRUE(server.start());

    serve::Client client;
    ASSERT_TRUE(client.connectTcp(server.tcpPort()));

    // Any op before auth is refused (connection survives).
    std::optional<Json> pre = client.call("ping", Json::object());
    ASSERT_TRUE(pre.has_value());
    EXPECT_FALSE((*pre)["ok"].asBool(true));

    // A wrong token is refused too.
    EXPECT_FALSE(client.authenticate("wrong"));

    // The right token opens the connection for every later op.
    EXPECT_TRUE(client.authenticate("sekrit"));
    EXPECT_TRUE(client.callOk("ping", Json::object()).has_value());

    const serve::MetricsSnapshot snap = server.metricsSnapshot();
    EXPECT_EQ(snap.auth_rejected, 2u);

    client.close();
    server.requestStop();
    server.wait();
}

TEST(ServeAuth, UnixSocketIsNeverChallenged)
{
    TempDir dir("auth_unix");
    serve::ServeOptions opts = tinyServeOptions();
    opts.socket_path = (dir.path() / "serve.sock").string();
    opts.auth_token = "sekrit"; // gates only the TCP listener
    serve::Server server(std::move(opts));
    ASSERT_TRUE(server.start());

    serve::Client client;
    ASSERT_TRUE(client.connectUnix(server.options().socket_path));
    EXPECT_TRUE(client.callOk("ping", Json::object()).has_value());
    // auth is an idempotent success on trusted connections, so
    // clients may send their token unconditionally.
    EXPECT_TRUE(client.authenticate("anything"));
    EXPECT_EQ(server.metricsSnapshot().auth_rejected, 0u);

    client.close();
    server.requestStop();
    server.wait();
}

} // namespace
} // namespace pibe
