/** @file Tests for indirect call promotion. */
#include <gtest/gtest.h>

#include <algorithm>

#include "ir/builder.h"
#include "opt/icp.h"
#include "tests/test_util.h"
#include "uarch/simulator.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;
using ir::Opcode;

/**
 * dispatcher(sel, x): indirect call through table[sel] with three
 * possible targets returning distinct transforms of x.
 */
struct DispatchModule
{
    Module m;
    ir::FuncId dispatcher;
    ir::FuncId t0, t1, t2;
    ir::SiteId site;
};

DispatchModule
makeDispatchModule(bool asm_site = false)
{
    DispatchModule d;
    d.t0 = d.m.addFunction("t0", 1);
    d.t1 = d.m.addFunction("t1", 1);
    d.t2 = d.m.addFunction("t2", 1);
    {
        FunctionBuilder b(d.m, d.t0);
        b.ret(b.binImm(BinKind::kAdd, b.param(0), 10));
    }
    {
        FunctionBuilder b(d.m, d.t1);
        b.ret(b.binImm(BinKind::kMul, b.param(0), 2));
    }
    {
        FunctionBuilder b(d.m, d.t2);
        b.ret(b.binImm(BinKind::kXor, b.param(0), 0xff));
    }
    d.m.addGlobal("table", {ir::funcAddrValue(d.t0),
                            ir::funcAddrValue(d.t1),
                            ir::funcAddrValue(d.t2)});
    d.dispatcher = d.m.addFunction("dispatcher", 2);
    FunctionBuilder b(d.m, d.dispatcher);
    ir::Reg sel = b.binImm(BinKind::kAnd, b.param(0), 3);
    ir::Reg capped = b.binImm(BinKind::kRem, sel, 3);
    ir::Reg target = b.load(0, capped, 0);
    ir::Reg r = b.icall(target, {b.param(1)}, asm_site);
    d.site = d.m.func(d.dispatcher)
                 .blocks[0]
                 .insts[d.m.func(d.dispatcher).blocks[0].insts.size() - 1]
                 .site_id;
    b.ret(r);
    return d;
}

size_t
countOpcode(const ir::Function& f, Opcode op)
{
    size_t n = 0;
    for (const auto& bb : f.blocks) {
        for (const auto& inst : bb.insts)
            n += (inst.op == op);
    }
    return n;
}

std::vector<std::vector<int64_t>>
dispatchArgs()
{
    std::vector<std::vector<int64_t>> calls;
    for (int64_t sel = 0; sel < 3; ++sel) {
        for (int64_t x : {0, 5, 100, -3})
            calls.push_back({sel, x});
    }
    return calls;
}

TEST(Icp, PromotesProfiledTargetsAndPreservesSemantics)
{
    DispatchModule d = makeDispatchModule();
    auto before = test::runScript(d.m, d.dispatcher, dispatchArgs());

    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t1, 900);
    p.addIndirect(d.site, d.t0, 90);
    auto audit = opt::runIcp(d.m, p, {});
    EXPECT_EQ(audit.promoted_sites, 1u);
    EXPECT_EQ(audit.promoted_targets, 2u);
    EXPECT_EQ(audit.promoted_weight, 990u);
    EXPECT_EQ(audit.total_icall_sites, 1u);
    EXPECT_TRUE(test::verifies(d.m));

    // Direct calls now guard the indirect fallback.
    EXPECT_EQ(countOpcode(d.m.func(d.dispatcher), Opcode::kCall), 2u);
    EXPECT_EQ(countOpcode(d.m.func(d.dispatcher), Opcode::kICall), 1u);

    // Unprofiled target t2 still reaches through the fallback.
    EXPECT_EQ(test::runScript(d.m, d.dispatcher, dispatchArgs()),
              before);
}

TEST(Icp, HottestTargetIsCheckedFirst)
{
    DispatchModule d = makeDispatchModule();
    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t2, 50);
    p.addIndirect(d.site, d.t1, 5000);
    opt::runIcp(d.m, p, {});
    // The first guarded direct call in layout order targets t1.
    const ir::Function& f = d.m.func(d.dispatcher);
    ir::FuncId first_direct = ir::kInvalidFunc;
    for (const auto& bb : f.blocks) {
        for (const auto& inst : bb.insts) {
            if (inst.op == Opcode::kCall) {
                first_direct = inst.callee;
                break;
            }
        }
        if (first_direct != ir::kInvalidFunc)
            break;
    }
    EXPECT_EQ(first_direct, d.t1);
}

TEST(Icp, BudgetLimitsPromotion)
{
    DispatchModule d = makeDispatchModule();
    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t1, 900);
    p.addIndirect(d.site, d.t0, 10);
    opt::IcpConfig cfg;
    cfg.budget = 0.9; // only the hottest pair fits
    auto audit = opt::runIcp(d.m, p, cfg);
    EXPECT_EQ(audit.promoted_targets, 1u);
    EXPECT_EQ(audit.promoted_weight, 900u);
}

TEST(Icp, ZeroBudgetPromotesNothing)
{
    DispatchModule d = makeDispatchModule();
    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t1, 900);
    opt::IcpConfig cfg;
    cfg.budget = 0.0;
    auto audit = opt::runIcp(d.m, p, cfg);
    EXPECT_EQ(audit.promoted_sites, 0u);
    EXPECT_EQ(countOpcode(d.m.func(d.dispatcher), Opcode::kCall), 0u);
}

TEST(Icp, UpdatesProfileEdges)
{
    DispatchModule d = makeDispatchModule();
    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t1, 900);
    p.addIndirect(d.site, d.t0, 90);
    opt::runIcp(d.m, p, {});
    // Promoted weight moved from the indirect site to direct edges.
    EXPECT_EQ(p.indirectCount(d.site), 0u);
    EXPECT_EQ(p.totalDirectWeight(), 990u);
}

TEST(Icp, AsmSitesAreUntouchable)
{
    DispatchModule d = makeDispatchModule(/*asm_site=*/true);
    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t1, 900);
    auto audit = opt::runIcp(d.m, p, {});
    EXPECT_EQ(audit.promoted_sites, 0u);
    EXPECT_EQ(audit.candidate_sites, 0u);
    EXPECT_EQ(countOpcode(d.m.func(d.dispatcher), Opcode::kCall), 0u);
}

TEST(Icp, SkipsArityMismatchedTargets)
{
    DispatchModule d = makeDispatchModule();
    // A bogus profile entry claiming a 2-parameter function was called
    // through a 1-argument site must not be promoted.
    ir::FuncId wrong = d.m.addFunction("wrong_arity", 2);
    {
        FunctionBuilder b(d.m, wrong);
        b.ret(b.param(0));
    }
    profile::EdgeProfile p;
    p.addIndirect(d.site, wrong, 5000);
    p.addIndirect(d.site, d.t1, 100);
    auto audit = opt::runIcp(d.m, p, {});
    EXPECT_EQ(audit.promoted_targets, 1u);
    for (const auto& bb : d.m.func(d.dispatcher).blocks) {
        for (const auto& inst : bb.insts) {
            if (inst.op == Opcode::kCall)
                EXPECT_NE(inst.callee, wrong);
        }
    }
}

TEST(Icp, MaxTargetsPerSiteCap)
{
    DispatchModule d = makeDispatchModule();
    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t0, 300);
    p.addIndirect(d.site, d.t1, 200);
    p.addIndirect(d.site, d.t2, 100);
    opt::IcpConfig cfg;
    cfg.max_targets_per_site = 2;
    auto audit = opt::runIcp(d.m, p, cfg);
    EXPECT_EQ(audit.promoted_targets, 2u);
    // The truncated site keeps a live fallback icall: residual
    // surface the coverage accounting must see.
    EXPECT_EQ(audit.capped_sites, 1u);
    EXPECT_EQ(countOpcode(d.m.func(d.dispatcher), Opcode::kICall), 1u);
}

/** FeasibilityMap asserting the dispatch site's complete 3-target set. */
opt::FeasibilityMap
dispatchFeasibility(const DispatchModule& d, bool complete = true)
{
    opt::FeasibilityMap fm;
    opt::SiteFeasibility sf;
    sf.complete = complete;
    sf.targets = {d.t0, d.t1, d.t2};
    std::sort(sf.targets.begin(), sf.targets.end());
    fm.emplace(d.site, std::move(sf));
    return fm;
}

TEST(Icp, TotalPromotionDropsFallback)
{
    DispatchModule d = makeDispatchModule();
    auto before = test::runScript(d.m, d.dispatcher, dispatchArgs());
    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t0, 300);
    p.addIndirect(d.site, d.t1, 200);
    p.addIndirect(d.site, d.t2, 100);
    opt::FeasibilityMap fm = dispatchFeasibility(d);
    opt::IcpConfig cfg;
    cfg.feasibility = &fm;
    cfg.total_promotion = true;
    auto audit = opt::runIcp(d.m, p, cfg);
    EXPECT_EQ(audit.total_safe_sites, 1u);
    EXPECT_EQ(audit.fallbacks_dropped, 1u);
    EXPECT_EQ(countOpcode(d.m.func(d.dispatcher), Opcode::kICall), 0u)
        << "the indirect branch must be gone";
    EXPECT_TRUE(test::verifies(d.m));
    EXPECT_EQ(before, test::runScript(d.m, d.dispatcher, dispatchArgs()));
    // All weight drained onto direct edges: nothing indirect left.
    EXPECT_EQ(p.indirectCount(d.site), 0u);
    EXPECT_EQ(audit.promoted_weight, audit.total_weight);
}

TEST(Icp, TotalPromotionCoversUnprofiledTargets)
{
    DispatchModule d = makeDispatchModule();
    auto before = test::runScript(d.m, d.dispatcher, dispatchArgs());
    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t0, 1000); // t1/t2 never observed
    opt::FeasibilityMap fm = dispatchFeasibility(d);
    opt::IcpConfig cfg;
    cfg.feasibility = &fm;
    cfg.total_promotion = true;
    auto audit = opt::runIcp(d.m, p, cfg);
    EXPECT_EQ(audit.fallbacks_dropped, 1u);
    EXPECT_EQ(countOpcode(d.m.func(d.dispatcher), Opcode::kICall), 0u);
    // Semantics hold for the *unprofiled* selectors too: the appended
    // feasible targets cover them.
    EXPECT_EQ(before, test::runScript(d.m, d.dispatcher, dispatchArgs()));
}

TEST(Icp, TotalPromotionUnsafeWhenIncomplete)
{
    DispatchModule d = makeDispatchModule();
    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t0, 300);
    opt::FeasibilityMap fm = dispatchFeasibility(d, /*complete=*/false);
    opt::IcpConfig cfg;
    cfg.feasibility = &fm;
    cfg.total_promotion = true;
    auto audit = opt::runIcp(d.m, p, cfg);
    EXPECT_EQ(audit.total_safe_sites, 0u);
    EXPECT_EQ(audit.fallbacks_dropped, 0u);
    EXPECT_EQ(countOpcode(d.m.func(d.dispatcher), Opcode::kICall), 1u)
        << "an incomplete set must keep the fallback";
}

TEST(Icp, TotalPromotionRespectsMaxTargets)
{
    DispatchModule d = makeDispatchModule();
    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t0, 300);
    opt::FeasibilityMap fm = dispatchFeasibility(d);
    opt::IcpConfig cfg;
    cfg.feasibility = &fm;
    cfg.total_promotion = true;
    cfg.total_promotion_max_targets = 2; // feasible set has 3
    auto audit = opt::runIcp(d.m, p, cfg);
    EXPECT_EQ(audit.total_safe_sites, 0u);
    EXPECT_EQ(audit.fallbacks_dropped, 0u);
    EXPECT_EQ(countOpcode(d.m.func(d.dispatcher), Opcode::kICall), 1u);
}

TEST(Icp, PerSiteCapWinsOverTotalPromotion)
{
    DispatchModule d = makeDispatchModule();
    profile::EdgeProfile p;
    p.addIndirect(d.site, d.t0, 300);
    p.addIndirect(d.site, d.t1, 200);
    p.addIndirect(d.site, d.t2, 100);
    opt::FeasibilityMap fm = dispatchFeasibility(d);
    opt::IcpConfig cfg;
    cfg.feasibility = &fm;
    cfg.total_promotion = true;
    cfg.max_targets_per_site = 2; // cannot cover all 3 feasible
    auto audit = opt::runIcp(d.m, p, cfg);
    EXPECT_EQ(audit.fallbacks_dropped, 0u);
    EXPECT_EQ(audit.capped_sites, 1u);
    EXPECT_EQ(countOpcode(d.m.func(d.dispatcher), Opcode::kICall), 1u);
}

/** Property: ICP preserves semantics on random icall-bearing modules. */
class IcpProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(IcpProperty, PreservesSemantics)
{
    test::GenConfig g;
    g.seed = GetParam();
    g.with_icalls = true;
    Module m = test::generateModule(g);
    ir::FuncId main = test::generatedMain(m);
    auto before = test::runScript(m, main, test::argMatrix());

    profile::EdgeProfile p;
    {
        uarch::Simulator sim(m);
        sim.setTimingEnabled(false);
        sim.setProfiler(&p);
        for (const auto& args : test::argMatrix())
            sim.run(main, args);
    }
    auto audit = opt::runIcp(m, p, {});
    (void)audit;
    ASSERT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runScript(m, main, test::argMatrix()), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcpProperty,
                         ::testing::Range<uint64_t>(1, 16));

} // namespace
} // namespace pibe
