/** @file Tests for jump-table lowering. */
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "opt/jump_tables.h"
#include "tests/test_util.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;

/** switcher(x): returns 100+case for known cases, -7 for default. */
ir::FuncId
makeSwitchFunction(Module& m, const std::string& name, int num_cases,
                   bool is_asm = false)
{
    ir::FuncId f = m.addFunction(name, 1);
    FunctionBuilder b(m, f);
    ir::BlockId d = b.newBlock();
    std::vector<std::pair<int64_t, ir::BlockId>> cases;
    for (int c = 0; c < num_cases; ++c)
        cases.push_back({c * 3, b.newBlock()}); // sparse values
    b.switchOn(b.param(0), d, cases, is_asm);
    for (int c = 0; c < num_cases; ++c) {
        b.setBlock(cases[c].second);
        b.ret(b.constI(100 + c));
    }
    b.setBlock(d);
    b.ret(b.constI(-7));
    return f;
}

TEST(JumpTables, CountSwitches)
{
    Module m;
    makeSwitchFunction(m, "s1", 4);
    makeSwitchFunction(m, "s2", 9);
    EXPECT_EQ(opt::countSwitches(m), 2u);
}

TEST(JumpTables, LoweringRemovesNonAsmSwitches)
{
    Module m;
    makeSwitchFunction(m, "s1", 4);
    makeSwitchFunction(m, "s2", 9);
    makeSwitchFunction(m, "s_asm", 5, /*is_asm=*/true);
    uint32_t lowered = opt::lowerJumpTables(m);
    EXPECT_EQ(lowered, 2u);
    EXPECT_EQ(opt::countSwitches(m), 1u); // the asm one survives
    EXPECT_TRUE(test::verifies(m));
}

TEST(JumpTables, EmptySwitchBecomesBranchToDefault)
{
    Module m;
    ir::FuncId f = makeSwitchFunction(m, "s0", 0);
    opt::lowerJumpTables(m);
    EXPECT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runFunction(m, f, {5}).result, -7);
}

/** Property sweep: lowering preserves semantics for any case count. */
class JumpTableProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(JumpTableProperty, LoweringPreservesSemantics)
{
    const int num_cases = GetParam();
    Module m;
    ir::FuncId f = makeSwitchFunction(m, "s", num_cases);

    std::vector<std::vector<int64_t>> probes;
    for (int c = 0; c < num_cases; ++c)
        probes.push_back({c * 3});     // each case value
    for (int64_t v : {-1, 1, 2, 500})  // default paths
        probes.push_back({v});

    auto before = test::runScript(m, f, probes);
    uint32_t lowered = opt::lowerJumpTables(m);
    EXPECT_EQ(lowered, 1u);
    ASSERT_TRUE(test::verifies(m));
    EXPECT_EQ(test::runScript(m, f, probes), before);
    EXPECT_EQ(opt::countSwitches(m), 0u);
}

INSTANTIATE_TEST_SUITE_P(CaseCounts, JumpTableProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 11, 16,
                                           23, 48));

TEST(JumpTables, LinearLimitOneProducesPureChain)
{
    Module m;
    ir::FuncId f = makeSwitchFunction(m, "s", 7);
    opt::lowerJumpTables(m, /*linear_limit=*/1);
    EXPECT_TRUE(test::verifies(m));
    for (int c = 0; c < 7; ++c)
        EXPECT_EQ(test::runFunction(m, f, {c * 3}).result, 100 + c);
    EXPECT_EQ(test::runFunction(m, f, {1}).result, -7);
}

} // namespace
} // namespace pibe
