/**
 * @file
 * Tests for the interprocedural target-set analysis
 * (check/target_sets.h): constraint rules (op-table seeding, copies,
 * taint, globals, call arg/ret), completeness semantics, the
 * incremental invalidation contract, the verify.targets /
 * coverage.targets checkers (including the seeded out-of-set-promotion
 * bug they must catch), the surface report, and serial-vs-parallel
 * bit-identity on a genkernel-scale module.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "check/analysis_manager.h"
#include "check/checks.h"
#include "check/target_sets.h"
#include "ir/builder.h"
#include "opt/icp.h"
#include "scale/parallel_pipeline.h"
#include "scale/scale_builder.h"
#include "scale/synthetic_profile.h"
#include "tests/test_util.h"

namespace pibe {
namespace {

using check::TargetSet;
using check::TargetSetAnalysis;
using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;

std::vector<const check::Diagnostic*>
withId(const check::CheckReport& report, const std::string& id)
{
    std::vector<const check::Diagnostic*> out;
    for (const check::Diagnostic& d : report.diags)
        if (d.check_id == id)
            out.push_back(&d);
    return out;
}

/** Two leaves, an op table holding both, and a dispatcher that loads
 *  from the table and calls indirectly. */
struct TableModule
{
    Module m;
    ir::FuncId f1, f2, dispatcher;
    ir::SiteId site;
};

TableModule
makeTableModule()
{
    TableModule t;
    t.f1 = t.m.addFunction("f1", 1);
    t.f2 = t.m.addFunction("f2", 1);
    {
        FunctionBuilder b(t.m, t.f1);
        b.ret(b.binImm(BinKind::kAdd, b.param(0), 1));
    }
    {
        FunctionBuilder b(t.m, t.f2);
        b.ret(b.binImm(BinKind::kMul, b.param(0), 3));
    }
    t.m.addGlobal("ops", {ir::funcAddrValue(t.f1),
                          ir::funcAddrValue(t.f2)});
    t.dispatcher = t.m.addFunction("dispatcher", 2);
    FunctionBuilder b(t.m, t.dispatcher);
    ir::Reg idx = b.binImm(BinKind::kAnd, b.param(0), 1);
    ir::Reg target = b.load(0, idx, 0);
    ir::Reg r = b.icall(target, {b.param(1)});
    const auto& insts = t.m.func(t.dispatcher).blocks[0].insts;
    t.site = insts[insts.size() - 1].site_id;
    b.ret(r);
    return t;
}

TEST(TargetSets, OpTableSeedingYieldsCompleteSet)
{
    TableModule t = makeTableModule();
    TargetSetAnalysis tsa(t.m);
    const check::SiteTargets* st = tsa.site(t.site);
    ASSERT_NE(st, nullptr);
    EXPECT_TRUE(st->complete());
    EXPECT_EQ(st->targets, (std::vector<ir::FuncId>{t.f1, t.f2}));
    EXPECT_EQ(tsa.addressTaken(), (std::vector<ir::FuncId>{t.f1, t.f2}));
    EXPECT_TRUE(tsa.badGlobalSlots().empty());
}

TEST(TargetSets, FuncAddrAndMoveFlow)
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 0);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.constI(7));
    }
    ir::FuncId caller = m.addFunction("caller", 0);
    FunctionBuilder b(m, caller);
    ir::Reg a = b.funcAddr(leaf);
    ir::Reg c = b.move(a);
    b.ret(b.icall(c, {}));
    ir::SiteId site =
        m.func(caller).blocks[0].insts[2].site_id;

    TargetSetAnalysis tsa(m);
    const check::SiteTargets* st = tsa.site(site);
    ASSERT_NE(st, nullptr);
    EXPECT_TRUE(st->complete());
    EXPECT_EQ(st->targets, std::vector<ir::FuncId>{leaf});
}

TEST(TargetSets, RootParameterIsIncomplete)
{
    Module m;
    ir::FuncId main = m.addFunction("main", 1); // default root
    FunctionBuilder b(m, main);
    b.ret(b.icall(b.param(0), {}));
    ir::SiteId site = m.func(main).blocks[0].insts[0].site_id;

    TargetSetAnalysis tsa(m);
    const check::SiteTargets* st = tsa.site(site);
    ASSERT_NE(st, nullptr);
    EXPECT_FALSE(st->complete());
}

TEST(TargetSets, ArithmeticOnPointerTaints)
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 0);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.constI(1));
    }
    ir::FuncId caller = m.addFunction("caller", 0);
    FunctionBuilder b(m, caller);
    ir::Reg a = b.funcAddr(leaf);
    ir::Reg mangled = b.binImm(BinKind::kAdd, a, 0);
    b.ret(b.icall(mangled, {}));
    ir::SiteId site = ir::kNoSite;
    for (const auto& inst : m.func(caller).blocks[0].insts)
        if (inst.op == ir::Opcode::kICall)
            site = inst.site_id;

    TargetSetAnalysis tsa(m);
    const check::SiteTargets* st = tsa.site(site);
    ASSERT_NE(st, nullptr);
    EXPECT_FALSE(st->complete()) << "pointer escaped into arithmetic";
}

TEST(TargetSets, StoreThenLoadThroughGlobalFlows)
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 0);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.constI(2));
    }
    ir::GlobalId slot = m.addGlobal("slot", {0});
    ir::FuncId writer = m.addFunction("writer", 0);
    {
        FunctionBuilder b(m, writer);
        ir::Reg a = b.funcAddr(leaf);
        ir::Reg zero = b.constI(0);
        b.store(slot, zero, a);
        b.ret(zero);
    }
    ir::FuncId reader = m.addFunction("reader", 0);
    FunctionBuilder b(m, reader);
    ir::Reg zero = b.constI(0);
    ir::Reg p = b.load(slot, zero, 0);
    b.ret(b.icall(p, {}));
    ir::SiteId site = m.func(reader).blocks[0].insts[2].site_id;

    TargetSetAnalysis tsa(m);
    const check::SiteTargets* st = tsa.site(site);
    ASSERT_NE(st, nullptr);
    EXPECT_TRUE(st->complete());
    EXPECT_EQ(st->targets, std::vector<ir::FuncId>{leaf});
}

TEST(TargetSets, CallArgumentAndReturnPropagation)
{
    Module m;
    ir::FuncId leaf = m.addFunction("leaf", 0);
    {
        FunctionBuilder b(m, leaf);
        b.ret(b.constI(3));
    }
    // provider() returns &leaf.
    ir::FuncId provider = m.addFunction("provider", 0);
    {
        FunctionBuilder b(m, provider);
        b.ret(b.funcAddr(leaf));
    }
    // sink(fp) calls through its parameter.
    ir::FuncId sink = m.addFunction("sink_fn", 1);
    {
        FunctionBuilder b(m, sink);
        b.ret(b.icall(b.param(0), {}));
    }
    // glue: fp = provider(); sink(fp)
    ir::FuncId glue = m.addFunction("glue", 0);
    {
        FunctionBuilder b(m, glue);
        ir::Reg fp = b.call(provider, {});
        ir::Reg r2 = b.icall(fp, {});
        (void)r2;
        b.call(sink, {fp});
        b.ret(fp);
    }
    ir::SiteId ret_site = m.func(glue).blocks[0].insts[1].site_id;
    ir::SiteId arg_site = m.func(sink).blocks[0].insts[0].site_id;

    TargetSetAnalysis tsa(m);
    const check::SiteTargets* via_ret = tsa.site(ret_site);
    ASSERT_NE(via_ret, nullptr);
    EXPECT_TRUE(via_ret->complete());
    EXPECT_EQ(via_ret->targets, std::vector<ir::FuncId>{leaf});

    const check::SiteTargets* via_arg = tsa.site(arg_site);
    ASSERT_NE(via_arg, nullptr);
    EXPECT_TRUE(via_arg->complete());
    EXPECT_EQ(via_arg->targets, std::vector<ir::FuncId>{leaf});
}

TEST(TargetSets, IncompleteIcallTaintsAddressTakenParams)
{
    Module m;
    // handler(fp) is address-taken and calls through its parameter.
    ir::FuncId handler = m.addFunction("handler", 1);
    {
        FunctionBuilder b(m, handler);
        b.ret(b.icall(b.param(0), {}));
    }
    // main (root) calls through an unresolved pointer with one arg —
    // it may invoke handler with an arbitrary pointer, so handler's
    // own icall must be incomplete.
    ir::FuncId main = m.addFunction("main", 1);
    {
        FunctionBuilder b(m, main);
        ir::Reg taken = b.funcAddr(handler); // makes handler a target
        (void)taken;
        b.ret(b.icall(b.param(0), {b.param(0)}));
    }
    ir::SiteId handler_site = m.func(handler).blocks[0].insts[0].site_id;

    TargetSetAnalysis tsa(m);
    const check::SiteTargets* st = tsa.site(handler_site);
    ASSERT_NE(st, nullptr);
    EXPECT_FALSE(st->complete())
        << "an unresolved icall may reach handler with any pointer";
}

TEST(TargetSets, BadGlobalSlotReported)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 0);
    {
        FunctionBuilder b(m, f);
        b.ret(b.constI(0));
    }
    // Slot decodes as a function address for a nonexistent id.
    m.addGlobal("ops", {static_cast<int64_t>(ir::funcAddrValue(99))});

    TargetSetAnalysis tsa(m);
    ASSERT_EQ(tsa.badGlobalSlots().size(), 1u);
    EXPECT_EQ(tsa.badGlobalSlots()[0].slot, 0u);

    check::CheckOptions opts;
    opts.lint = false;
    opts.targets = true;
    check::CheckReport report = check::runChecks(m, opts);
    EXPECT_FALSE(withId(report, "verify.targets").empty());
}

TEST(TargetSets, EmptyCompleteSiteWarns)
{
    Module m;
    ir::FuncId f = m.addFunction("f", 1);
    FunctionBuilder b(m, f);
    ir::Reg never = b.newReg(); // never written: empty, complete
    b.ret(b.icall(never, {}));

    check::CheckOptions opts;
    opts.lint = false;
    opts.targets = true;
    check::CheckReport report = check::runChecks(m, opts);
    auto diags = withId(report, "verify.targets");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0]->severity, check::Severity::kWarning);
}

// The acceptance-criteria seeded bug: a corrupt profile makes ICP
// promote a target outside the site's complete feasible set; the
// translation-validation checker must flag the promoted direct call.
TEST(TargetSets, SeededOutOfSetPromotionCaught)
{
    TableModule t = makeTableModule();
    // evil has matching arity but is NOT in the op table.
    ir::FuncId evil = t.m.addFunction("evil", 1);
    {
        FunctionBuilder b(t.m, evil);
        b.ret(b.binImm(BinKind::kXor, b.param(0), 0x41));
    }
    profile::EdgeProfile prof;
    prof.addIndirect(t.site, evil, 1000); // corrupt: never observable

    opt::IcpConfig cfg;
    opt::IcpAudit audit = opt::runIcp(t.m, prof, cfg);
    ASSERT_EQ(audit.promoted_targets, 1u) << "bug must be injected";
    ASSERT_TRUE(test::verifies(t.m)) << "structurally valid, yet wrong";

    check::CheckOptions opts;
    opts.lint = false;
    opts.targets = true;
    check::CheckReport report = check::runChecks(t.m, opts);
    auto diags = withId(report, "verify.targets");
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0]->severity, check::Severity::kError);
    EXPECT_NE(diags[0]->message.find("outside"), std::string::npos);
}

TEST(TargetSets, InSetPromotionIsClean)
{
    TableModule t = makeTableModule();
    profile::EdgeProfile prof;
    prof.addIndirect(t.site, t.f1, 900);
    prof.addIndirect(t.site, t.f2, 100);
    opt::runIcp(t.m, prof, {});

    check::CheckOptions opts;
    opts.lint = false;
    opts.targets = true;
    check::CheckReport report = check::runChecks(t.m, opts);
    EXPECT_TRUE(withId(report, "verify.targets").empty());
}

TEST(TargetSets, CoverageTargetsFlagsImpossibleProfile)
{
    TableModule t = makeTableModule();
    ir::FuncId evil = t.m.addFunction("evil", 1);
    {
        FunctionBuilder b(t.m, evil);
        b.ret(b.param(0));
    }
    profile::EdgeProfile prof;
    prof.addIndirect(t.site, t.f1, 500);
    prof.addIndirect(t.site, evil, 5); // outside the static set

    check::CheckOptions opts;
    opts.verify = false;
    opts.lint = false;
    opts.targets = true;
    opts.profile = &prof;
    check::CheckReport report = check::runChecks(t.m, opts);
    auto diags = withId(report, "coverage.targets");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0]->severity, check::Severity::kError);
}

TEST(TargetSets, IncrementalInvalidationReextractsExactlyOne)
{
    test::GenConfig gcfg;
    gcfg.seed = 11;
    Module m = test::generateModule(gcfg);

    TargetSetAnalysis tsa(m);
    const auto sites_before = tsa.sites(); // copy
    const size_t base = tsa.summariesExtracted();
    EXPECT_EQ(base, m.numFunctions());
    EXPECT_EQ(tsa.solves(), 1u);

    tsa.invalidateFunction(0);
    const auto& sites_after = tsa.sites();
    EXPECT_EQ(tsa.summariesExtracted(), base + 1)
        << "exactly the invalidated summary is re-extracted";
    EXPECT_EQ(tsa.solves(), 2u);

    // Parity: incremental re-solve == fresh analysis.
    TargetSetAnalysis fresh(m);
    const auto& sites_fresh = fresh.sites();
    ASSERT_EQ(sites_after.size(), sites_fresh.size());
    for (const auto& [sid, st] : sites_fresh) {
        auto it = sites_after.find(sid);
        ASSERT_NE(it, sites_after.end());
        EXPECT_EQ(it->second.targets, st.targets);
        EXPECT_EQ(it->second.incomplete, st.incomplete);
    }
    (void)sites_before;
}

TEST(TargetSets, AnalysisManagerInvalidationTracksMutation)
{
    TableModule t = makeTableModule();
    check::AnalysisManager am(t.m);
    const check::SiteTargets* st = am.targetSets().site(t.site);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->targets.size(), 2u);

    // Mutate: dispatcher now calls through a tainted pointer.
    ir::Function& f = t.m.func(t.dispatcher);
    for (auto& bb : f.blocks) {
        for (auto& inst : bb.insts) {
            if (inst.op == ir::Opcode::kBinOp &&
                inst.bin == BinKind::kAnd)
                inst.op = ir::Opcode::kMove; // idx = param0 (unbounded)
        }
    }
    am.invalidate(t.dispatcher);
    const check::SiteTargets* st2 = am.targetSets().site(t.site);
    ASSERT_NE(st2, nullptr);
    // Still loads from the table: same set, still complete.
    EXPECT_EQ(st2->targets.size(), 2u);
}

TEST(TargetSets, SurfaceReportCountsAndAir)
{
    TableModule t = makeTableModule();
    TargetSetAnalysis tsa(t.m);
    check::SurfaceReport rep = check::buildSurfaceReport(tsa, 8);
    EXPECT_EQ(rep.icall_sites, 1u);
    EXPECT_EQ(rep.complete_sites, 1u);
    EXPECT_EQ(rep.address_taken, 2u);
    EXPECT_EQ(rep.switchpoline_eligible, 1u);
    EXPECT_EQ(rep.set_size_hist.at(2), 1u);
    ASSERT_FALSE(rep.defenses.empty());
    // Unhardened module: no site is behind a forward scheme yet.
    for (const auto& row : rep.defenses)
        EXPECT_EQ(row.protected_icalls + row.unprotected_icalls,
                  rep.icall_sites);
    const std::string json = check::renderSurfaceJson(rep);
    EXPECT_NE(json.find("\"bench\": \"surface\""), std::string::npos);
    EXPECT_NE(json.find("\"defenses\""), std::string::npos);
}

// genkernel smoke: a 10^5-instruction synthetic kernel's op-table
// discipline must give every site a complete feasible set, and
// verify.targets must be clean — including through the parallel
// pipeline, bit-identically for any worker count.
TEST(TargetSets, GenkernelSmokeCompleteAndParallelIdentical)
{
    scale::ScaleConfig cfg;
    cfg.target_insts = 100000;
    cfg.seed = 13;
    Module m = scale::buildScaleModule(cfg);

    TargetSetAnalysis tsa(m);
    size_t incomplete = 0;
    for (const auto& [sid, st] : tsa.sites())
        incomplete += st.incomplete;
    EXPECT_EQ(incomplete, 0u);
    EXPECT_FALSE(tsa.sites().empty());

    check::CheckOptions opts;
    opts.lint = false;
    opts.targets = true;
    check::CheckReport report = check::runChecks(m, opts);
    EXPECT_TRUE(withId(report, "verify.targets").empty());

    profile::EdgeProfile prof = scale::synthesizeProfile(m);
    scale::ParallelPipelineConfig pcfg;
    pcfg.icp.total_promotion = true;
    pcfg.defenses = harden::DefenseConfig::all();

    pcfg.jobs = 1;
    scale::ParallelPipelineReport r1;
    Module img1 = scale::buildImageParallel(m, prof, pcfg, &r1);
    pcfg.jobs = 4;
    scale::ParallelPipelineReport r4;
    Module img4 = scale::buildImageParallel(m, prof, pcfg, &r4);

    EXPECT_EQ(scale::moduleDigest(img1), scale::moduleDigest(img4));
    EXPECT_EQ(r1.icp.fallbacks_dropped, r4.icp.fallbacks_dropped);
    EXPECT_EQ(check::renderText(r1.checks.diags),
              check::renderText(r4.checks.diags))
        << "sorted diagnostics must not depend on worker count";
    EXPECT_EQ(check::countSeverity(r1.checks.diags,
                                   check::Severity::kError),
              0u);
}

// --- fast solver vs reference oracle --------------------------------

// Both engines compute the unique least fixpoint, so every queryable
// fact — per-site target sets, completeness flags, the address-taken
// pool, bad global slots — must be bit-identical.
void
expectSolversAgree(const Module& m)
{
    TargetSetAnalysis fast(m);
    fast.setSolverMode(check::SolverMode::kFast);
    TargetSetAnalysis ref(m);
    ref.setSolverMode(check::SolverMode::kReference);

    const auto& sf = fast.sites();
    const auto& sr = ref.sites();
    ASSERT_EQ(sf.size(), sr.size());
    auto it = sf.begin();
    auto jt = sr.begin();
    for (; it != sf.end(); ++it, ++jt) {
        EXPECT_EQ(it->first, jt->first);
        EXPECT_EQ(it->second.incomplete, jt->second.incomplete)
            << "site " << it->first;
        EXPECT_EQ(it->second.targets, jt->second.targets)
            << "site " << it->first;
    }
    EXPECT_EQ(fast.addressTaken(), ref.addressTaken());
    ASSERT_EQ(fast.badGlobalSlots().size(),
              ref.badGlobalSlots().size());
    for (size_t i = 0; i < fast.badGlobalSlots().size(); ++i) {
        EXPECT_EQ(fast.badGlobalSlots()[i].global,
                  ref.badGlobalSlots()[i].global);
        EXPECT_EQ(fast.badGlobalSlots()[i].slot,
                  ref.badGlobalSlots()[i].slot);
    }
    EXPECT_EQ(fast.solverStats().mode, check::SolverMode::kFast);
    EXPECT_EQ(ref.solverStats().mode, check::SolverMode::kReference);
}

TEST(SolverDifferential, AgreesOnRandomModules)
{
    for (uint64_t seed : {1u, 5u, 17u, 42u, 101u, 999u}) {
        test::GenConfig gcfg;
        gcfg.seed = seed;
        gcfg.num_mids = 9;
        gcfg.max_blocks = 6;
        const ir::Module m = test::generateModule(gcfg);
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectSolversAgree(m);
    }
}

TEST(SolverDifferential, AgreesOnGenkernelModules)
{
    for (uint64_t seed : {7u, 13u}) {
        scale::ScaleConfig cfg;
        cfg.target_insts = 20000;
        cfg.seed = seed;
        const Module m = scale::buildScaleModule(cfg);
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectSolversAgree(m);
    }
}

// A ring of kMove copies (one big SCC) fed from an op table and
// drained by an icall: the shape that forces the fast solver through
// its cycle-collapsing paths (offline Tarjan catches the static ring;
// LCD catches cycles closed through dynamic call edges).
TEST(SolverDifferential, AgreesOnCopyRingSCC)
{
    Module m;
    std::vector<int64_t> init;
    for (int i = 0; i < 40; ++i) {
        ir::FuncId f = m.addFunction("h" + std::to_string(i), 1);
        FunctionBuilder b(m, f);
        b.ret(b.binImm(BinKind::kAdd, b.param(0), 1));
        init.push_back(ir::funcAddrValue(f));
    }
    m.addGlobal("ops", std::move(init));

    ir::FuncId d = m.addFunction("ring", 1);
    {
        FunctionBuilder b(m, d);
        ir::Reg seed = b.load(0, b.param(0), 0);
        const int n = 300;
        std::vector<ir::Reg> regs;
        for (int i = 0; i < n; ++i)
            regs.push_back(b.move(seed));
        b.ret(b.icall(regs[n - 1], {b.param(0)}));
        // Rewire the moves into a chain regs[0] <- seed <- ... and
        // close the cycle with an extra back-edge move
        // regs[0] <- regs[n-1] spliced in before the icall.
        ir::Function& fn = m.func(d);
        int mi = 0;
        ir::Instruction back_edge;
        for (auto& inst : fn.blocks[0].insts) {
            if (inst.op != ir::Opcode::kMove)
                continue;
            if (mi == 0)
                back_edge = inst; // template: same op/shape
            inst.a = (mi == 0) ? seed : regs[mi - 1];
            ++mi;
        }
        back_edge.dst = regs[0];
        back_edge.a = regs[n - 1];
        auto& insts = fn.blocks[0].insts;
        insts.insert(insts.end() - 2, back_edge);
    }
    ASSERT_TRUE(test::verifies(m));
    expectSolversAgree(m);

    // The collapsed solve must actually have collapsed the ring.
    TargetSetAnalysis fast(m);
    fast.setSolverMode(check::SolverMode::kFast);
    fast.ensureSolved();
    EXPECT_GT(fast.solverStats().scc_collapsed +
                  fast.solverStats().lcd_collapsed,
              0u);
    // Every reg in the ring aliases the whole table.
    for (const auto& [sid, targets] : fast.sites()) {
        EXPECT_EQ(targets.targets.size(), 40u);
        EXPECT_TRUE(targets.complete());
    }
}

// A deep linear copy chain routed through a frame slot round-trip:
// stresses difference propagation down long paths.
TEST(SolverDifferential, AgreesOnDeepChainThroughFrame)
{
    Module m;
    std::vector<int64_t> init;
    for (int i = 0; i < 25; ++i) {
        ir::FuncId f = m.addFunction("leaf" + std::to_string(i), 1);
        FunctionBuilder b(m, f);
        b.ret(b.binImm(BinKind::kAdd, b.param(0), 1));
        init.push_back(ir::funcAddrValue(f));
    }
    m.addGlobal("ops", std::move(init));

    ir::FuncId d = m.addFunction("chain", 1);
    {
        FunctionBuilder b(m, d);
        ir::Reg prev = b.load(0, b.param(0), 0);
        for (int i = 0; i < 500; ++i)
            prev = b.move(prev);
        const uint32_t slot = b.newFrameSlot();
        b.frameStore(slot, prev);
        ir::Reg back = b.frameLoad(slot);
        b.ret(b.icall(back, {b.param(0)}));
    }
    ASSERT_TRUE(test::verifies(m));
    expectSolversAgree(m);
}

} // namespace
} // namespace pibe
