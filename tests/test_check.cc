/**
 * @file
 * Tests for the src/check static-analysis framework and audit suite:
 * CFG/dominator/dataflow analyses, the AnalysisManager cache, the four
 * checker groups (expect-style: known-bad snippets must yield exact
 * diagnostic ids at exact locations; known-good modules must be
 * finding-free), the extended verifier, and the pipeline pass
 * sandwich.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "check/analysis_manager.h"
#include "check/cfg.h"
#include "check/checks.h"
#include "check/dataflow.h"
#include "check/sandwich.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "kernel/kernel.h"
#include "pibe/pipeline.h"
#include "runtime/thread_pool.h"
#include "tests/test_util.h"
#include "uarch/simulator.h"

namespace pibe {
namespace {

using check::AnalysisManager;
using check::CheckOptions;
using check::CheckReport;
using check::Diagnostic;
using check::Severity;
using ir::BinKind;

/** Diagnostics matching `id`, in emission order. */
std::vector<const Diagnostic*>
withId(const CheckReport& report, const std::string& id)
{
    std::vector<const Diagnostic*> out;
    for (const Diagnostic& d : report.diags)
        if (d.check_id == id)
            out.push_back(&d);
    return out;
}

/** A diamond: bb0 -> (bb1|bb2) -> bb3, plus an unreachable bb4. */
ir::Module
diamondModule()
{
    ir::Module m;
    ir::FuncId f = m.addFunction("diamond", 1);
    ir::FunctionBuilder b(m, f);
    ir::BlockId left = b.newBlock();
    ir::BlockId right = b.newBlock();
    ir::BlockId join = b.newBlock();
    ir::BlockId orphan = b.newBlock();
    b.condBr(b.param(0), left, right);
    b.setBlock(left);
    ir::Reg one = b.constI(1);
    b.br(join);
    b.setBlock(right);
    ir::Reg two = b.constI(2);
    b.br(join);
    b.setBlock(join);
    b.ret(b.bin(BinKind::kAdd, one, two));
    b.setBlock(orphan);
    b.ret(b.constI(9));
    return m;
}

TEST(Cfg, DiamondEdgesReachabilityRpo)
{
    ir::Module m = diamondModule();
    check::Cfg cfg(m.func(0));

    EXPECT_EQ(cfg.succs(0), (std::vector<ir::BlockId>{1, 2}));
    EXPECT_EQ(cfg.preds(3), (std::vector<ir::BlockId>{1, 2}));
    EXPECT_TRUE(cfg.isReachable(3));
    EXPECT_FALSE(cfg.isReachable(4));
    EXPECT_EQ(cfg.numReachable(), 4u);

    const auto& rpo = cfg.reversePostOrder();
    ASSERT_EQ(rpo.size(), 4u);
    EXPECT_EQ(rpo.front(), 0u);
    EXPECT_EQ(rpo.back(), 3u);
    EXPECT_EQ(cfg.rpoIndex(4), SIZE_MAX);
    for (ir::BlockId b = 0; b < 5; ++b)
        EXPECT_FALSE(cfg.inCycle(b));
}

TEST(Cfg, LoopBlocksAreInCycle)
{
    ir::Module m;
    ir::FuncId f = m.addFunction("loop", 1);
    ir::FunctionBuilder b(m, f);
    ir::BlockId head = b.newBlock();
    ir::BlockId body = b.newBlock();
    ir::BlockId exit = b.newBlock();
    ir::Reg i = b.constI(0);
    b.br(head);
    b.setBlock(head);
    ir::Reg cond = b.bin(BinKind::kLt, i, b.param(0));
    b.condBr(cond, body, exit);
    b.setBlock(body);
    b.setRegBin(i, BinKind::kAdd, i, b.constI(1));
    b.br(head);
    b.setBlock(exit);
    b.ret(i);

    check::Cfg cfg(m.func(f));
    EXPECT_FALSE(cfg.inCycle(0));
    EXPECT_TRUE(cfg.inCycle(head));
    EXPECT_TRUE(cfg.inCycle(body));
    EXPECT_FALSE(cfg.inCycle(exit));
}

TEST(DomTree, DiamondDominance)
{
    ir::Module m = diamondModule();
    check::Cfg cfg(m.func(0));
    check::DomTree dom(cfg);

    EXPECT_EQ(dom.idom(1), 0u);
    EXPECT_EQ(dom.idom(2), 0u);
    EXPECT_EQ(dom.idom(3), 0u); // join's idom is the branch, not a side
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3));
    EXPECT_TRUE(dom.dominates(1, 1));
    EXPECT_EQ(dom.idom(4), check::DomTree::kNoIdom);

    auto kids = dom.children(0);
    std::sort(kids.begin(), kids.end());
    EXPECT_EQ(kids, (std::vector<ir::BlockId>{1, 2, 3}));
    EXPECT_EQ(dom.depth(0), 0u);
    EXPECT_EQ(dom.depth(3), 1u);
}

TEST(Dataflow, LivenessAcrossDiamond)
{
    ir::Module m = diamondModule();
    const ir::Function& f = m.func(0);
    check::Cfg cfg(f);
    check::Liveness live(f, cfg);

    // `one` (defined in bb1) and `two` (defined in bb2) are both live
    // into the join; the param is live into the entry only.
    const ir::Reg one = f.blocks[1].insts[0].dst;
    const ir::Reg two = f.blocks[2].insts[0].dst;
    EXPECT_TRUE(live.liveIn(3).test(one));
    EXPECT_TRUE(live.liveIn(3).test(two));
    EXPECT_TRUE(live.liveIn(0).test(0));
    EXPECT_FALSE(live.liveOut(3).count());
}

TEST(Dataflow, ReachingDefsAndDefiniteAssignment)
{
    // r is assigned on only one path; s on both.
    ir::Module m;
    ir::FuncId fid = m.addFunction("partial", 1);
    ir::FunctionBuilder b(m, fid);
    ir::BlockId then = b.newBlock();
    ir::BlockId other = b.newBlock();
    ir::BlockId join = b.newBlock();
    ir::Reg r = b.newReg();
    ir::Reg s = b.newReg();
    b.condBr(b.param(0), then, other);
    b.setBlock(then);
    b.setRegConst(r, 1);
    b.setRegConst(s, 2);
    b.br(join);
    b.setBlock(other);
    b.setRegConst(s, 3);
    b.br(join);
    b.setBlock(join);
    b.ret(s);

    const ir::Function& f = m.func(fid);
    check::Cfg cfg(f);
    check::ReachingDefs rd(f, cfg);
    check::DefiniteAssignment da(f, cfg);

    // Two defs of s reach the join's ret; one def of r.
    EXPECT_EQ(rd.defsOfRegAt(join, 0, s).size(), 2u);
    EXPECT_EQ(rd.defsOfRegAt(join, 0, r).size(), 1u);
    // Param 0 reaches everywhere as a pseudo-def.
    ASSERT_FALSE(rd.defsOfRegAt(join, 0, 0).empty());
    EXPECT_TRUE(rd.defs()[rd.defsOfRegAt(join, 0, 0)[0]].is_param);

    check::BitVector at_join = da.assignedBefore(join, 0);
    EXPECT_TRUE(at_join.test(s));
    EXPECT_FALSE(at_join.test(r)); // not assigned on the other path
    EXPECT_TRUE(at_join.test(0));  // parameters always assigned
}

TEST(Dataflow, BitVectorOps)
{
    check::BitVector a(130), bv(130);
    a.set(0);
    a.set(129);
    bv.set(64);
    EXPECT_TRUE(a.unionWith(bv));
    EXPECT_FALSE(a.unionWith(bv));
    EXPECT_EQ(a.count(), 3u);
    check::BitVector gen(130), kill(130);
    kill.set(129);
    gen.set(1);
    a.transfer(gen, kill);
    EXPECT_TRUE(a.test(1));
    EXPECT_FALSE(a.test(129));
    EXPECT_EQ(check::BitVector(130, true).count(), 130u);
}

TEST(AnalysisManager, CachesAndInvalidates)
{
    ir::Module m = diamondModule();
    AnalysisManager am(m);
    am.cfg(0);
    am.liveness(0);
    const size_t after_first = am.computations();
    am.cfg(0);
    am.liveness(0);
    EXPECT_EQ(am.computations(), after_first);
    am.invalidate(0);
    am.liveness(0);
    EXPECT_GT(am.computations(), after_first);
}

TEST(AnalysisManager, InvalidationIsPerFunction)
{
    ir::Module m;
    for (const char* name : {"left", "right"}) {
        ir::FuncId f = m.addFunction(name, 1);
        ir::FunctionBuilder b(m, f);
        b.ret(b.param(0));
    }
    AnalysisManager am(m);
    am.liveness(0);
    am.cfg(0);
    am.liveness(1);
    am.cfg(1);
    const size_t computed = am.computations();
    const size_t hits = am.hits();

    // Mutating only function 0 must not cost function 1 its cache:
    // the untouched function is served from cache (hit counter), the
    // invalidated one is recomputed (miss counter).
    am.invalidate(0);
    am.liveness(1);
    am.cfg(1);
    EXPECT_EQ(am.computations(), computed);
    EXPECT_EQ(am.hits(), hits + 2);
    am.liveness(0);
    EXPECT_GT(am.computations(), computed);
}

// --- lint group -----------------------------------------------------

TEST(Lint, UseBeforeDefIsError)
{
    ir::Module m;
    ir::FuncId f = m.addFunction("ubd", 0);
    ir::FunctionBuilder b(m, f);
    ir::Reg r = b.newReg();
    b.ret(r);

    CheckReport report = check::runChecks(m, CheckOptions{});
    auto diags = withId(report, "lint.use-before-def");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0]->severity, Severity::kError);
    EXPECT_EQ(diags[0]->func_name, "ubd");
    EXPECT_EQ(diags[0]->block, 0u);
    EXPECT_EQ(diags[0]->inst, 0);
}

TEST(Lint, MaybeUninitIsWarning)
{
    ir::Module m;
    ir::FuncId fid = m.addFunction("maybe", 1);
    ir::FunctionBuilder b(m, fid);
    ir::BlockId then = b.newBlock();
    ir::BlockId join = b.newBlock();
    ir::Reg r = b.newReg();
    b.condBr(b.param(0), then, join);
    b.setBlock(then);
    b.setRegConst(r, 7);
    b.br(join);
    b.setBlock(join);
    b.ret(r);

    CheckReport report = check::runChecks(m, CheckOptions{});
    auto diags = withId(report, "lint.maybe-uninit");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0]->severity, Severity::kWarning);
    EXPECT_EQ(diags[0]->block, join);
    EXPECT_EQ(report.errors(), 0u);
}

TEST(Lint, DeadStoresToRegAndFrame)
{
    ir::Module m;
    ir::FuncId fid = m.addFunction("dead", 1);
    m.func(fid).frame_size = 2;
    ir::FunctionBuilder b(m, fid);
    b.constI(42);              // dead register store
    b.frameStore(0, b.param(0)); // dead frame store
    b.frameStore(1, b.param(0));
    ir::Reg back = b.frameLoad(1); // slot 1 is read -> not dead
    b.ret(back);

    CheckReport report = check::runChecks(m, CheckOptions{});
    auto diags = withId(report, "lint.dead-store");
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0]->block, 0u);
    EXPECT_EQ(diags[0]->inst, 0); // the const
    EXPECT_EQ(diags[1]->inst, 1); // frame slot 0
}

TEST(Lint, UnreachableBlockIsWarning)
{
    ir::Module m = diamondModule();
    CheckReport report = check::runChecks(m, CheckOptions{});
    auto diags = withId(report, "lint.unreachable-block");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0]->block, 4u);
    EXPECT_EQ(diags[0]->inst, -1); // block scope
}

TEST(Lint, ICallArityAgainstResolvableTargets)
{
    ir::Module m;
    ir::FuncId callee = m.addFunction("takes_two", 2);
    {
        ir::FunctionBuilder b(m, callee);
        b.ret(b.param(0));
    }
    ir::FuncId fid = m.addFunction("caller", 1);
    ir::FunctionBuilder b(m, fid);
    ir::Reg target = b.funcAddr(callee);
    b.icall(target, {b.param(0)}); // one arg, callee takes two
    b.ret();

    CheckReport report = check::runChecks(m, CheckOptions{});
    auto diags = withId(report, "lint.call-arity");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0]->severity, Severity::kError);
    EXPECT_EQ(diags[0]->func_name, "caller");
    EXPECT_NE(diags[0]->site, ir::kNoSite);
}

TEST(Lint, ICallThroughBogusConstIsError)
{
    ir::Module m;
    ir::FuncId fid = m.addFunction("bogus", 0);
    ir::FunctionBuilder b(m, fid);
    ir::Reg target = b.constI(ir::funcAddrValue(99)); // no function 99
    b.icall(target, {});
    b.ret();

    CheckReport report = check::runChecks(m, CheckOptions{});
    EXPECT_EQ(withId(report, "lint.call-target").size(), 1u);
}

TEST(Lint, UnknownICallTargetsAreNotJudged)
{
    // Target flows from memory: the lint must stay silent even though
    // the arity would mismatch if it guessed.
    ir::Module m;
    ir::FuncId callee = m.addFunction("takes_two", 2);
    {
        ir::FunctionBuilder b(m, callee);
        b.ret(b.param(0));
    }
    ir::GlobalId g =
        m.addGlobal("table", {ir::funcAddrValue(callee)});
    ir::FuncId fid = m.addFunction("caller", 1);
    ir::FunctionBuilder b(m, fid);
    ir::Reg target = b.load(g, b.constI(0));
    b.icall(target, {b.param(0)});
    b.ret();

    CheckReport report = check::runChecks(m, CheckOptions{});
    EXPECT_TRUE(withId(report, "lint.call-arity").empty());
}

// --- known-good corpora --------------------------------------------

TEST(Check, GeneratedModulesAreErrorFree)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        test::GenConfig cfg;
        cfg.seed = seed;
        ir::Module m = test::generateModule(cfg);
        CheckReport report = check::runChecks(m, CheckOptions{});
        EXPECT_EQ(report.errors(), 0u) << "seed " << seed << ": "
                                       << renderText(report.diags);
    }
}

TEST(Check, KernelIsErrorFree)
{
    kernel::KernelConfig cfg;
    cfg.num_drivers = 16;
    ir::Module m = kernel::buildKernel(cfg).module;
    CheckReport report = check::runChecks(m, CheckOptions{});
    EXPECT_EQ(report.errors(), 0u) << renderText(report.diags);
}

// --- coverage group -------------------------------------------------

/** icall + switch + ret module used by the coverage tests. */
ir::Module
surfaceModule(bool boot_helper = false)
{
    ir::Module m;
    ir::FuncId helper = m.addFunction(
        "helper", 1, boot_helper ? ir::kAttrBootSection : ir::kAttrNone);
    {
        ir::FunctionBuilder b(m, helper);
        b.ret(b.param(0));
    }
    ir::FuncId fid = m.addFunction("main", 1);
    ir::FunctionBuilder b(m, fid);
    ir::BlockId a = b.newBlock();
    ir::BlockId c = b.newBlock();
    b.switchOn(b.param(0), a, {{1, c}});
    b.setBlock(a);
    ir::Reg t = b.funcAddr(helper);
    b.icall(t, {b.param(0)});
    b.ret();
    b.setBlock(c);
    b.ret(b.constI(1));
    return m;
}

TEST(Coverage, HardenedImagePassesAudit)
{
    ir::Module m = surfaceModule();
    harden::applyDefenses(m, harden::DefenseConfig::all());

    CheckOptions opts;
    opts.coverage = true;
    opts.defense = harden::DefenseConfig::all();
    CheckReport report = check::runChecks(m, opts);
    EXPECT_EQ(report.errors(), 0u) << renderText(report.diags);
}

TEST(Coverage, DroppedFwdSchemeIsExactlyOneFinding)
{
    ir::Module m = surfaceModule();
    harden::applyDefenses(m, harden::DefenseConfig::all());
    // Sabotage: drop the scheme from the (only) indirect call.
    ir::SiteId site = ir::kNoSite;
    for (auto& bb : m.func(1).blocks) {
        for (auto& inst : bb.insts) {
            if (inst.op == ir::Opcode::kICall) {
                inst.fwd_scheme = ir::FwdScheme::kNone;
                site = inst.site_id;
            }
        }
    }
    ASSERT_NE(site, ir::kNoSite);

    CheckOptions opts;
    opts.coverage = true;
    opts.defense = harden::DefenseConfig::all();
    CheckReport report = check::runChecks(m, opts);
    auto diags = withId(report, "coverage.fwd-missing");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0]->site, site);
    EXPECT_EQ(diags[0]->func_name, "main");
    EXPECT_EQ(report.errors(), 1u);
}

TEST(Coverage, WrongSchemeAndAsmRewriteAndResidualSwitch)
{
    ir::Module m = surfaceModule();
    // Hand-harden wrongly: retpoline where `all` demands the fenced
    // variant, leave the switch unlowered, and tag an asm site.
    for (auto& bb : m.func(1).blocks) {
        for (auto& inst : bb.insts) {
            if (inst.op == ir::Opcode::kICall) {
                inst.fwd_scheme = ir::FwdScheme::kRetpoline;
                inst.is_asm = true;
            }
            if (inst.op == ir::Opcode::kRet)
                inst.ret_scheme = ir::RetScheme::kFencedRet;
        }
    }
    for (auto& bb : m.func(0).blocks)
        for (auto& inst : bb.insts)
            if (inst.op == ir::Opcode::kRet)
                inst.ret_scheme = ir::RetScheme::kFencedRet;

    CheckOptions opts;
    opts.coverage = true;
    opts.defense = harden::DefenseConfig::all();
    CheckReport report = check::runChecks(m, opts);
    EXPECT_EQ(withId(report, "coverage.asm-rewritten").size(), 1u);
    EXPECT_EQ(withId(report, "coverage.switch-residual").size(), 1u);
    EXPECT_TRUE(withId(report, "coverage.fwd-wrong").empty())
        << "asm exemption outranks the scheme mismatch";
}

TEST(Coverage, RetSchemes)
{
    ir::Module m = surfaceModule(/*boot_helper=*/true);
    harden::applyDefenses(m, harden::DefenseConfig::all());

    // Sabotage one reachable ret in main.
    ir::Instruction* ret = nullptr;
    for (auto& bb : m.func(1).blocks)
        for (auto& inst : bb.insts)
            if (inst.op == ir::Opcode::kRet && !ret)
                ret = &inst;
    ASSERT_NE(ret, nullptr);
    ret->ret_scheme = ir::RetScheme::kLviRet; // wrong under `all`

    CheckOptions opts;
    opts.coverage = true;
    opts.defense = harden::DefenseConfig::all();
    CheckReport report = check::runChecks(m, opts);
    EXPECT_EQ(withId(report, "coverage.ret-wrong").size(), 1u);

    // Boot-section helper got no scheme: that is correct, no finding.
    EXPECT_TRUE(withId(report, "coverage.ret-missing").empty());

    // Now over-harden the boot ret: warning, not error.
    for (auto& bb : m.func(0).blocks)
        for (auto& inst : bb.insts)
            if (inst.op == ir::Opcode::kRet)
                inst.ret_scheme = ir::RetScheme::kFencedRet;
    CheckReport again = check::runChecks(m, opts);
    EXPECT_EQ(withId(again, "coverage.boot-hardened").size(), 1u);
}

TEST(Coverage, AllowlistSuppressesFindings)
{
    ir::Module m = surfaceModule();
    CheckOptions opts;
    opts.coverage = true;
    opts.defense = harden::DefenseConfig::all();
    // Unhardened module: everything reachable is a finding...
    CheckReport bare = check::runChecks(m, opts);
    EXPECT_GT(bare.errors(), 0u);
    // ...unless the functions are allowlisted.
    opts.allowed_funcs = {"main", "helper"};
    CheckReport allowed = check::runChecks(m, opts);
    EXPECT_EQ(allowed.errors(), 0u) << renderText(allowed.diags);
}

TEST(Coverage, UnreachableSiteIsNoteOnly)
{
    ir::Module m = diamondModule(); // bb4 unreachable, has a ret
    harden::applyDefenses(m, harden::DefenseConfig::all());
    // Sabotage the unreachable ret only.
    auto& orphan_ret = m.func(0).blocks[4].insts.back();
    orphan_ret.ret_scheme = ir::RetScheme::kNone;

    CheckOptions opts;
    opts.lint = false;
    opts.coverage = true;
    opts.defense = harden::DefenseConfig::all();
    CheckReport report = check::runChecks(m, opts);
    EXPECT_EQ(report.errors(), 0u) << renderText(report.diags);
    EXPECT_EQ(withId(report, "coverage.unreachable-site").size(), 1u);
}

// --- profile group --------------------------------------------------

/** main calls leaf twice directly and once through a pointer. */
ir::Module
callerModule()
{
    ir::Module m;
    ir::FuncId leaf = m.addFunction("leaf", 1);
    {
        ir::FunctionBuilder b(m, leaf);
        b.ret(b.param(0));
    }
    ir::FuncId fid = m.addFunction("main", 1);
    ir::FunctionBuilder b(m, fid);
    ir::Reg r1 = b.call(leaf, {b.param(0)});
    ir::Reg r2 = b.call(leaf, {r1});
    ir::Reg t = b.funcAddr(leaf);
    ir::Reg r3 = b.icall(t, {r2});
    b.ret(r3);
    return m;
}

profile::EdgeProfile
collectProfileOf(const ir::Module& m, int runs)
{
    profile::EdgeProfile prof;
    uarch::Simulator sim(m);
    sim.setTimingEnabled(false);
    sim.setProfiler(&prof);
    for (int i = 0; i < runs; ++i)
        sim.run(m.findFunction("main"), {i});
    return prof;
}

TEST(ProfileFlow, FreshProfileConserves)
{
    ir::Module m = callerModule();
    profile::EdgeProfile prof = collectProfileOf(m, 5);

    CheckOptions opts;
    opts.verify = opts.lint = false;
    opts.profile_flow = true;
    opts.profile = &prof;
    CheckReport report = check::runChecks(m, opts);
    EXPECT_EQ(report.errors(), 0u) << renderText(report.diags);
}

TEST(ProfileFlow, CorruptedInvocationCountIsCaught)
{
    ir::Module m = callerModule();
    profile::EdgeProfile prof = collectProfileOf(m, 5);
    prof.addInvocation(m.findFunction("leaf"), 3); // hand corruption

    CheckOptions opts;
    opts.verify = opts.lint = false;
    opts.profile_flow = true;
    opts.profile = &prof;
    CheckReport report = check::runChecks(m, opts);
    auto diags = withId(report, "profile.invocation-flow");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0]->func_name, "leaf");
    EXPECT_EQ(report.errors(), 1u);
}

TEST(ProfileFlow, RootsAreExemptDownward)
{
    ir::Module m = callerModule();
    profile::EdgeProfile prof = collectProfileOf(m, 5);
    // main is invoked externally 5 times with no incoming edges: that
    // is fine for a root, an error for anything else.
    CheckOptions opts;
    opts.verify = opts.lint = false;
    opts.profile_flow = true;
    opts.profile = &prof;
    CheckReport asroot = check::runChecks(m, opts);
    EXPECT_EQ(asroot.errors(), 0u);
    opts.roots = {"leaf"}; // main no longer a root
    CheckReport report = check::runChecks(m, opts);
    ASSERT_EQ(withId(report, "profile.invocation-flow").size(), 1u);
    EXPECT_EQ(withId(report, "profile.invocation-flow")[0]->func_name,
              "main");
}

TEST(ProfileFlow, UnresolvedAndOutOfBoundSites)
{
    ir::Module m = callerModule();
    profile::EdgeProfile prof = collectProfileOf(m, 2);
    const ir::SiteId bound = m.siteIdBound();
    prof.addDirect(bound + 7, 1);        // beyond the allocated bound
    m.reserveSiteIds(bound + 2);         // bound grows, site unused
    prof.addDirect(bound + 1, 1);        // in bounds, resolves nowhere

    CheckOptions opts;
    opts.verify = opts.lint = false;
    opts.profile_flow = true;
    opts.profile = &prof;
    CheckReport report = check::runChecks(m, opts);
    EXPECT_EQ(withId(report, "profile.site-bound").size(), 1u);
    EXPECT_EQ(withId(report, "profile.unresolved-site").size(), 1u);
}

TEST(ProfileFlow, SiteKindAndAcyclicBound)
{
    ir::Module m = callerModule();
    profile::EdgeProfile prof = collectProfileOf(m, 3);

    // Record a direct count against the icall's site id.
    ir::SiteId icall_site = ir::kNoSite;
    ir::SiteId dcall_site = ir::kNoSite;
    for (const auto& bb : m.func(1).blocks) {
        for (const auto& inst : bb.insts) {
            if (inst.op == ir::Opcode::kICall)
                icall_site = inst.site_id;
            else if (inst.op == ir::Opcode::kCall &&
                     dcall_site == ir::kNoSite)
                dcall_site = inst.site_id;
        }
    }
    prof.addDirect(icall_site, 1);

    CheckOptions opts;
    opts.verify = opts.lint = false;
    opts.profile_flow = true;
    opts.profile = &prof;
    CheckReport report = check::runChecks(m, opts);
    EXPECT_FALSE(withId(report, "profile.site-kind").empty());

    // A straight-line call site cannot execute more often than its
    // function is invoked.
    profile::EdgeProfile prof2 = collectProfileOf(m, 3);
    prof2.addDirect(dcall_site, 50);
    opts.profile = &prof2;
    CheckReport r2 = check::runChecks(m, opts);
    auto diags = withId(r2, "profile.acyclic-bound");
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0]->site, dcall_site);
}

TEST(ProfileFlow, ProfilesWithoutInvocationsSkipFlowChecks)
{
    ir::Module m = callerModule();
    profile::EdgeProfile prof; // hand-made: direct counts only
    for (const auto& bb : m.func(1).blocks)
        for (const auto& inst : bb.insts)
            if (inst.op == ir::Opcode::kCall)
                prof.addDirect(inst.site_id, 10);

    CheckOptions opts;
    opts.verify = opts.lint = false;
    opts.profile_flow = true;
    opts.profile = &prof;
    CheckReport report = check::runChecks(m, opts);
    EXPECT_EQ(report.errors(), 0u) << renderText(report.diags);
}

// --- verifier extensions --------------------------------------------

TEST(Verifier, DuplicateSiteIdWithinFunction)
{
    ir::Module m = callerModule();
    // Give both direct calls the same site id.
    std::vector<ir::Instruction*> calls;
    for (auto& bb : m.func(1).blocks)
        for (auto& inst : bb.insts)
            if (inst.op == ir::Opcode::kCall)
                calls.push_back(&inst);
    ASSERT_EQ(calls.size(), 2u);
    calls[1]->site_id = calls[0]->site_id;

    auto problems = ir::verifyFunction(m, m.func(1));
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("duplicate site id"), std::string::npos);
}

TEST(Verifier, DuplicateSiteIdAcrossFunctions)
{
    ir::Module m = callerModule();
    // leaf's ret reuses main's ret site id.
    m.func(0).blocks[0].insts.back().site_id =
        m.func(1).blocks[0].insts.back().site_id;
    EXPECT_TRUE(ir::verifyFunction(m, m.func(0)).empty());
    EXPECT_TRUE(ir::verifyFunction(m, m.func(1)).empty());
    auto problems = ir::verifyModuleSiteIds(m);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("duplicate site id"), std::string::npos);
}

TEST(Verifier, DuplicateSwitchCaseValue)
{
    ir::Module m;
    ir::FuncId fid = m.addFunction("sw", 1);
    ir::FunctionBuilder b(m, fid);
    ir::BlockId other = b.newBlock();
    b.switchOn(b.param(0), other, {{3, other}, {3, other}});
    b.setBlock(other);
    b.ret();

    auto problems = ir::verifyFunction(m, m.func(fid));
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("duplicate switch case value 3"),
              std::string::npos);
}

TEST(Verifier, BrokenFunctionsSurfaceAsVerifyDiagnosticsNotLints)
{
    ir::Module m = callerModule();
    m.func(1).blocks[0].insts.pop_back(); // drop the terminator
    CheckReport report = check::runChecks(m, CheckOptions{});
    EXPECT_FALSE(withId(report, "verify.function").empty());
    // No lint diagnostics for the structurally broken function.
    for (const Diagnostic& d : report.diags) {
        if (d.check_id.rfind("lint.", 0) == 0) {
            EXPECT_NE(d.func_name, "main");
        }
    }
}

// --- pass sandwich --------------------------------------------------

TEST(Sandwich, BrokenHardenPassIsAttributed)
{
    ir::Module m = surfaceModule();
    check::PassSandwich sandwich;

    CheckOptions pre;
    sandwich.afterPass("input", m, pre);

    harden::applyDefenses(m, harden::DefenseConfig::all());
    // The "broken pass": one reachable icall loses its scheme.
    ir::SiteId site = ir::kNoSite;
    for (auto& bb : m.func(1).blocks) {
        for (auto& inst : bb.insts) {
            if (inst.op == ir::Opcode::kICall) {
                inst.fwd_scheme = ir::FwdScheme::kNone;
                site = inst.site_id;
            }
        }
    }

    CheckOptions post;
    post.coverage = true;
    post.defense = harden::DefenseConfig::all();
    const check::StageResult& stage =
        sandwich.afterPass("harden", m, post);

    ASSERT_TRUE(stage.regressed());
    std::vector<const Diagnostic*> fresh_cov;
    for (const Diagnostic& d : stage.fresh)
        if (d.check_id == "coverage.fwd-missing")
            fresh_cov.push_back(&d);
    ASSERT_EQ(fresh_cov.size(), 1u);
    EXPECT_EQ(fresh_cov[0]->pass, "harden");
    EXPECT_EQ(fresh_cov[0]->site, site);
    EXPECT_EQ(fresh_cov[0]->func_name, "main");
}

TEST(Sandwich, CleanPipelineDoesNotRegress)
{
    ir::Module m = surfaceModule();
    check::PassSandwich sandwich;
    CheckOptions pre;
    sandwich.afterPass("input", m, pre);
    harden::applyDefenses(m, harden::DefenseConfig::all());
    CheckOptions post;
    post.coverage = true;
    post.defense = harden::DefenseConfig::all();
    const check::StageResult& stage =
        sandwich.afterPass("harden", m, post);
    EXPECT_FALSE(stage.regressed());
    EXPECT_EQ(stage.errors, 0u);
}

TEST(Sandwich, BuildImageRecordsStagesAndStaysGreen)
{
    test::GenConfig gcfg;
    gcfg.seed = 3;
    ir::Module m = test::generateModule(gcfg);
    profile::EdgeProfile prof;
    {
        uarch::Simulator sim(m);
        sim.setTimingEnabled(false);
        sim.setProfiler(&prof);
        for (const auto& args : test::argMatrix())
            sim.run(test::generatedMain(m), args);
    }
    core::OptConfig opt = core::OptConfig::icpAndInline(0.999);
    ASSERT_TRUE(opt.sandwich); // on by default
    core::BuildReport report;
    ir::Module image = core::buildImage(m, prof, opt,
                                        harden::DefenseConfig::all(),
                                        &report);
    EXPECT_TRUE(test::verifies(image));
    // No stage may have introduced an error-severity finding.
    for (const Diagnostic& d : report.sandwich)
        EXPECT_NE(d.severity, Severity::kError) << d.render();

    // The sandwich runs on one AnalysisManager with per-pass touched
    // sets: only functions a pass actually mutated are invalidated, so
    // later audit stages must have reused analyses of untouched
    // functions.
    EXPECT_GT(report.analyses_computed, 0u);
    EXPECT_GT(report.analyses_reused, 0u);
}

TEST(Sandwich, ModuleCleanupStagePreservesBehaviour)
{
    test::GenConfig gcfg;
    gcfg.seed = 5;
    ir::Module m = test::generateModule(gcfg);
    profile::EdgeProfile prof; // empty: pipeline still runs

    core::OptConfig opt = core::OptConfig::icpAndInline(0.999);
    opt.module_cleanup = true;
    ir::Module image = core::buildImage(m, prof, opt,
                                        harden::DefenseConfig::none());
    for (const auto& args : test::argMatrix()) {
        EXPECT_EQ(test::runFunction(m, test::generatedMain(m), args),
                  test::runFunction(image, test::generatedMain(image),
                                    args));
    }
}

TEST(Diagnostics, SortIsCanonicalAndDeterministic)
{
    auto mk = [](ir::FuncId f, ir::BlockId b, int32_t i,
                 const char* id) {
        Diagnostic d;
        d.severity = Severity::kWarning;
        d.func = f;
        d.block = b;
        d.inst = i;
        d.check_id = id;
        d.message = "m";
        return d;
    };
    // Emission order leaks checker scheduling: group-by-group, with a
    // module-scoped finding in front.
    std::vector<Diagnostic> diags = {
        mk(ir::kInvalidFunc, 0, -1, "coverage.reconcile"),
        mk(2, 0, 3, "lint.dead-store"),
        mk(1, 1, 0, "verify.targets"),
        mk(1, 0, 5, "lint.dead-store"),
        mk(1, 0, 5, "verify.use-before-def"),
        mk(2, 0, 1, "verify.targets"),
    };
    std::vector<Diagnostic> shuffled = {diags[3], diags[0], diags[5],
                                        diags[1], diags[2], diags[4]};
    check::sortDiagnostics(diags);
    check::sortDiagnostics(shuffled);
    ASSERT_EQ(diags.size(), shuffled.size());
    for (size_t i = 0; i < diags.size(); ++i) {
        EXPECT_EQ(diags[i].render(), shuffled[i].render())
            << "sorted order must not depend on emission order";
    }
    // Canonical order: (func, block, inst, check id); module-scoped
    // findings (func == kInvalidFunc) last.
    EXPECT_EQ(diags.front().func, 1u);
    EXPECT_EQ(diags.front().check_id, "lint.dead-store");
    EXPECT_EQ(diags[1].check_id, "verify.use-before-def");
    EXPECT_EQ(diags.back().check_id, "coverage.reconcile");
    for (size_t i = 1; i < diags.size(); ++i)
        EXPECT_LE(diags[i - 1].func, diags[i].func);
}

// --- streaming cursors vs replay oracles ----------------------------

// The lint sweep runs on forward streaming cursors / per-block fact
// matrices; the original per-query forms are kept as oracles. Every
// (block, instruction, register) query must agree on modules with
// branches, icalls, frames, and dead code.
TEST(DataflowCursors, StreamingMatchesReplayOracles)
{
    for (uint64_t seed : {1u, 7u, 23u, 99u, 1234u}) {
        test::GenConfig gcfg;
        gcfg.seed = seed;
        gcfg.num_mids = 8;
        gcfg.max_blocks = 7;
        const ir::Module m = test::generateModule(gcfg);
        ASSERT_TRUE(test::verifies(m));

        for (const ir::Function& f : m.functions()) {
            if (f.isDeclaration())
                continue;
            const check::Cfg cfg(f);
            const check::Liveness live(f, cfg);
            const check::FrameLiveness frame_live(f, cfg);
            const check::ReachingDefs reach(f, cfg);
            const check::DefiniteAssignment assign(f, cfg);

            check::ReachingDefs::Cursor reach_cur(reach);
            check::DefiniteAssignment::Cursor assign_cur(assign);
            check::FactMatrix reg_out;
            check::FactMatrix frame_out;
            std::vector<size_t> cursor_ids;

            for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
                const auto& insts = f.blocks[b].insts;
                const std::vector<check::BitVector> live_ref =
                    live.perInstLiveOut(b);
                const std::vector<check::BitVector> frame_ref =
                    frame_live.perInstLiveOut(b);
                live.perInstLiveOut(b, reg_out);
                frame_live.perInstLiveOut(b, frame_out);
                reach_cur.startBlock(b);
                assign_cur.startBlock(b);

                for (uint32_t i = 0; i < insts.size(); ++i) {
                    for (ir::Reg r = 0; r < f.num_regs; ++r) {
                        EXPECT_EQ(reg_out.test(i, r),
                                  live_ref[i].test(r))
                            << f.name << " b" << b << " i" << i
                            << " r" << r;
                        reach_cur.defsOf(r, cursor_ids);
                        EXPECT_EQ(cursor_ids,
                                  reach.defsOfRegAt(b, i, r))
                            << f.name << " b" << b << " i" << i
                            << " r" << r;
                    }
                    for (uint32_t s = 0; s < f.frame_size; ++s)
                        EXPECT_EQ(frame_out.test(i, s),
                                  frame_ref[i].test(s));
                    EXPECT_TRUE(assign_cur.assigned() ==
                                assign.assignedBefore(b, i))
                        << f.name << " b" << b << " i" << i;
                    reach_cur.advance(insts[i]);
                    assign_cur.advance(insts[i]);
                }
            }
        }
    }
}

// --- the parallel check sandwich ------------------------------------

// runChecksParallel must produce the same sorted diagnostic list as
// runChecks at every pool size and shard size, on a module seeded
// with real findings (dead stores, uninitialized uses, bad coverage).
TEST(ParallelChecks, IdenticalToSerialAtEveryPoolAndShardSize)
{
    test::GenConfig gcfg;
    gcfg.seed = 5;
    gcfg.num_mids = 10;
    ir::Module m = test::generateModule(gcfg);

    check::CheckOptions opts;
    opts.coverage = true; // unhardened module: plenty of findings
    opts.targets = true;
    opts.defense = harden::DefenseConfig::all();

    CheckReport serial = check::runChecks(m, opts);
    check::sortDiagnostics(serial.diags);
    ASSERT_FALSE(serial.diags.empty());
    const std::string want = check::renderText(serial.diags);

    for (size_t pool_size : {1u, 2u, 8u}) {
        for (size_t shard : {1u, 3u, 64u}) {
            runtime::ThreadPool pool(pool_size);
            CheckReport par =
                check::runChecksParallel(m, opts, pool, shard);
            check::sortDiagnostics(par.diags);
            EXPECT_EQ(check::renderText(par.diags), want)
                << "pool " << pool_size << " shard " << shard;
        }
    }
}

// A clean hardened kernel must stay clean through the parallel
// sandwich, and the shared-analysis phase timings must be populated.
TEST(ParallelChecks, CleanKernelStaysCleanAndTimed)
{
    kernel::KernelConfig kcfg;
    kcfg.num_drivers = 3;
    ir::Module m = kernel::buildKernel(kcfg).module;
    harden::applyDefenses(m, harden::DefenseConfig::all());

    check::CheckOptions opts;
    opts.coverage = true;
    opts.targets = true;
    opts.defense = harden::DefenseConfig::all();

    runtime::ThreadPool pool(4);
    CheckReport par = check::runChecksParallel(m, opts, pool, 2);
    check::sortDiagnostics(par.diags);
    EXPECT_EQ(par.errors(), 0u)
        << (par.diags.empty() ? std::string()
                              : par.diags.front().render());

    CheckReport serial = check::runChecks(m, opts);
    check::sortDiagnostics(serial.diags);
    EXPECT_EQ(check::renderText(par.diags),
              check::renderText(serial.diags));

    // The parallel runner reports its phase boundaries.
    std::vector<std::string> names;
    for (const auto& [name, ms] : par.group_ms)
        names.push_back(name);
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "targets.solve"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "shards.parallel"),
              names.end());
}

} // namespace
} // namespace pibe
