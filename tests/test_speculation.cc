/** @file Tests for the transient-attack engine (§6, §8.6). */
#include <gtest/gtest.h>

#include "harden/harden.h"
#include "ir/builder.h"
#include "tests/test_util.h"
#include "uarch/simulator.h"
#include "uarch/speculation.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::FwdScheme;
using ir::Module;
using ir::RetScheme;
using uarch::AttackKind;
using uarch::TransientAttacker;

TEST(VulnMatrix, ForwardEdges)
{
    using uarch::forwardSchemeVulnerable;
    // Spectre V2: only retpoline-family thunks pin BTB speculation.
    EXPECT_TRUE(forwardSchemeVulnerable(AttackKind::kSpectreV2,
                                        FwdScheme::kNone));
    EXPECT_FALSE(forwardSchemeVulnerable(AttackKind::kSpectreV2,
                                         FwdScheme::kRetpoline));
    // LVI-CFI's thunk still ends in a BTB-predicted jump (§6.3).
    EXPECT_TRUE(forwardSchemeVulnerable(AttackKind::kSpectreV2,
                                        FwdScheme::kLviCfi));
    EXPECT_FALSE(forwardSchemeVulnerable(AttackKind::kSpectreV2,
                                         FwdScheme::kFencedRetpoline));
    EXPECT_FALSE(forwardSchemeVulnerable(AttackKind::kSpectreV2,
                                         FwdScheme::kJumpSwitch));

    // LVI: only LFENCE'd sequences order the target load.
    EXPECT_TRUE(forwardSchemeVulnerable(AttackKind::kLvi,
                                        FwdScheme::kNone));
    EXPECT_TRUE(forwardSchemeVulnerable(AttackKind::kLvi,
                                        FwdScheme::kRetpoline));
    EXPECT_FALSE(forwardSchemeVulnerable(AttackKind::kLvi,
                                         FwdScheme::kLviCfi));
    EXPECT_FALSE(forwardSchemeVulnerable(AttackKind::kLvi,
                                         FwdScheme::kFencedRetpoline));
    EXPECT_TRUE(forwardSchemeVulnerable(AttackKind::kLvi,
                                        FwdScheme::kJumpSwitch));

    // Ret2spec does not apply to forward edges at all.
    for (FwdScheme s :
         {FwdScheme::kNone, FwdScheme::kRetpoline, FwdScheme::kLviCfi,
          FwdScheme::kFencedRetpoline, FwdScheme::kJumpSwitch}) {
        EXPECT_FALSE(forwardSchemeVulnerable(AttackKind::kRet2spec, s));
    }
}

TEST(VulnMatrix, BackwardEdges)
{
    using uarch::returnSchemeVulnerable;
    // Ret2spec: RSB poisoning beats plain returns only.
    EXPECT_TRUE(returnSchemeVulnerable(AttackKind::kRet2spec,
                                       RetScheme::kNone));
    EXPECT_FALSE(returnSchemeVulnerable(AttackKind::kRet2spec,
                                        RetScheme::kReturnRetpoline));
    EXPECT_FALSE(returnSchemeVulnerable(AttackKind::kRet2spec,
                                        RetScheme::kLviRet));
    EXPECT_FALSE(returnSchemeVulnerable(AttackKind::kRet2spec,
                                        RetScheme::kFencedRet));

    // LVI: the unfenced return-address load is injectable even in the
    // plain return retpoline; the fenced variants are safe.
    EXPECT_TRUE(returnSchemeVulnerable(AttackKind::kLvi,
                                       RetScheme::kNone));
    EXPECT_TRUE(returnSchemeVulnerable(AttackKind::kLvi,
                                       RetScheme::kReturnRetpoline));
    EXPECT_FALSE(returnSchemeVulnerable(AttackKind::kLvi,
                                        RetScheme::kLviRet));
    EXPECT_FALSE(returnSchemeVulnerable(AttackKind::kLvi,
                                        RetScheme::kFencedRet));

    // V2-on-returns: only the LVI thunk's jmpq reopens the BTB.
    EXPECT_FALSE(returnSchemeVulnerable(AttackKind::kSpectreV2,
                                        RetScheme::kNone));
    EXPECT_TRUE(returnSchemeVulnerable(AttackKind::kSpectreV2,
                                       RetScheme::kLviRet));
    EXPECT_FALSE(returnSchemeVulnerable(AttackKind::kSpectreV2,
                                        RetScheme::kFencedRet));
}

/** Victim module: hot loop making indirect calls and returns. */
struct Victim
{
    Module m;
    ir::FuncId loop;
    ir::FuncId gadget;
};

Victim
makeVictim()
{
    Victim v;
    ir::FuncId leaf = v.m.addFunction("leaf", 1);
    {
        FunctionBuilder b(v.m, leaf);
        b.ret(b.param(0));
    }
    v.gadget = v.m.addFunction("disclosure_gadget", 1);
    {
        FunctionBuilder b(v.m, v.gadget);
        b.sink(b.param(0));
        b.ret(b.constI(0));
    }
    v.m.addGlobal("t", {ir::funcAddrValue(leaf)});
    v.loop = v.m.addFunction("victim_loop", 1);
    FunctionBuilder b(v.m, v.loop);
    ir::Reg i = b.newReg();
    b.setRegConst(i, 0);
    ir::Reg one = b.constI(1);
    ir::Reg z = b.constI(0);
    ir::BlockId head = b.newBlock();
    ir::BlockId body = b.newBlock();
    ir::BlockId done = b.newBlock();
    b.br(head);
    b.setBlock(head);
    ir::Reg c = b.bin(BinKind::kLt, i, b.param(0));
    b.condBr(c, body, done);
    b.setBlock(body);
    ir::Reg t = b.load(0, z);
    ir::Reg r = b.icall(t, {i});
    b.sink(r);
    b.setRegBin(i, BinKind::kAdd, i, one);
    b.br(head);
    b.setBlock(done);
    b.ret(i);
    return v;
}

/** Run the victim under an attacker; returns gadget hits. */
uint64_t
attack(AttackKind kind, const harden::DefenseConfig& defenses)
{
    Victim v = makeVictim();
    harden::applyDefenses(v.m, defenses);
    uarch::Simulator sim(v.m);
    TransientAttacker attacker(kind,
                               sim.layout().funcBase(v.gadget));
    sim.setObserver(&attacker);
    sim.run(v.loop, {200});
    EXPECT_GT(attacker.eventsObserved(), 0u);
    return attacker.gadgetHits();
}

TEST(Attack, SpectreV2HitsUnprotectedKernel)
{
    EXPECT_GT(attack(AttackKind::kSpectreV2,
                     harden::DefenseConfig::none()),
              0u);
}

TEST(Attack, RetpolinesStopSpectreV2)
{
    EXPECT_EQ(attack(AttackKind::kSpectreV2,
                     harden::DefenseConfig::retpolinesOnly()),
              0u);
}

TEST(Attack, RetpolinesDoNotStopLvi)
{
    EXPECT_GT(attack(AttackKind::kLvi,
                     harden::DefenseConfig::retpolinesOnly()),
              0u);
}

TEST(Attack, LviCfiStopsLviButNotSpectreV2)
{
    EXPECT_EQ(attack(AttackKind::kLvi,
                     harden::DefenseConfig::lviOnly()),
              0u); // forward edges fenced
    EXPECT_GT(attack(AttackKind::kSpectreV2,
                     harden::DefenseConfig::lviOnly()),
              0u); // thunk jmp is BTB-predicted
}

TEST(Attack, Ret2specHitsPlainReturns)
{
    EXPECT_GT(attack(AttackKind::kRet2spec,
                     harden::DefenseConfig::none()),
              0u);
}

TEST(Attack, ReturnRetpolinesStopRet2spec)
{
    EXPECT_EQ(attack(AttackKind::kRet2spec,
                     harden::DefenseConfig::retRetpolinesOnly()),
              0u);
}

TEST(Attack, FullDefensesStopEverything)
{
    for (AttackKind kind : {AttackKind::kSpectreV2, AttackKind::kRet2spec,
                            AttackKind::kLvi}) {
        EXPECT_EQ(attack(kind, harden::DefenseConfig::all()), 0u)
            << "attack " << uarch::attackKindName(kind)
            << " must be fully mitigated";
    }
}

TEST(Attack, MechanisticBtbPoisoningFlowsThroughPrediction)
{
    // With no defenses, the hit comes from the actual poisoned BTB
    // entry, not the static table: verify hits track events closely.
    Victim v = makeVictim();
    uarch::Simulator sim(v.m);
    TransientAttacker attacker(AttackKind::kSpectreV2,
                               sim.layout().funcBase(v.gadget));
    sim.setObserver(&attacker);
    sim.run(v.loop, {100});
    EXPECT_GT(attacker.hitRate(), 0.3);
}

TEST(Attack, KindNames)
{
    EXPECT_STREQ(uarch::attackKindName(AttackKind::kSpectreV2),
                 "spectre-v2");
    EXPECT_STREQ(uarch::attackKindName(AttackKind::kRet2spec),
                 "ret2spec");
    EXPECT_STREQ(uarch::attackKindName(AttackKind::kLvi), "lvi");
}

} // namespace
} // namespace pibe
