/**
 * @file
 * Table 1: per-branch-type overhead (clock ticks) of each transient
 * mitigation, plus slowdown on a SPEC-CPU2006-like user program.
 *
 * The paper measured empty calls with unpredictable targets on an
 * i7-8700; here the same microbenchmarks run on the uarch simulator,
 * whose thunk costs are calibrated to the paper's measurements — so
 * this table doubles as a calibration check. The paper's non-transient
 * rows (LLVM-CFI, stackprotector, safestack) are out of scope: they
 * exist in the paper only to show non-transient defenses are already
 * cheap.
 */
#include "bench/bench_util.h"

#include "harden/harden.h"
#include "ir/builder.h"
#include "uarch/simulator.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;

constexpr int64_t kCalls = 4000;

/** Emit a counted loop; `body` runs once per iteration. */
void
emitLoop(FunctionBuilder& b, int64_t n,
         const std::function<void(ir::Reg)>& body)
{
    ir::Reg i = b.newReg();
    b.setRegConst(i, 0);
    ir::Reg one = b.constI(1);
    ir::Reg limit = b.constI(n);
    ir::BlockId head = b.newBlock();
    ir::BlockId body_bb = b.newBlock();
    ir::BlockId done = b.newBlock();
    b.br(head);
    b.setBlock(head);
    ir::Reg c = b.bin(BinKind::kLt, i, limit);
    b.condBr(c, body_bb, done);
    b.setBlock(body_bb);
    body(i);
    b.setRegBin(i, BinKind::kAdd, i, one);
    b.br(head);
    b.setBlock(done);
    b.ret(i);
}

/** Add 4 empty-ish leaf callees; returns their ids. */
std::vector<ir::FuncId>
addLeaves(Module& m)
{
    std::vector<ir::FuncId> leaves;
    for (int t = 0; t < 4; ++t) {
        ir::FuncId f =
            m.addFunction("leaf" + std::to_string(t), 1);
        FunctionBuilder b(m, f);
        b.ret(b.param(0));
    }
    for (ir::FuncId f = 0; f < 4; ++f)
        leaves.push_back(f);
    return leaves;
}

enum class CallKind { kBaseline, kDirect, kIndirect, kVirtual };

/** Build a microbenchmark module for one call kind. */
Module
makeMicro(CallKind kind)
{
    Module m;
    auto leaves = addLeaves(m);
    std::vector<int64_t> table;
    for (ir::FuncId f : leaves)
        table.push_back(ir::funcAddrValue(f));
    ir::GlobalId vtable = m.addGlobal("vtable", std::move(table));

    ir::FuncId main = m.addFunction("micro_main", 0);
    FunctionBuilder b(m, main);
    emitLoop(b, kCalls, [&](ir::Reg i) {
        switch (kind) {
          case CallKind::kBaseline:
            b.sink(i);
            break;
          case CallKind::kDirect: {
            ir::Reg r = b.call(leaves[0], {i});
            b.sink(r);
            break;
          }
          case CallKind::kIndirect: {
            // Stable target: the BTB predicts the uninstrumented
            // baseline, so the delta isolates the thunk cost itself
            // (the calibration constants of the cost model).
            ir::Reg zero = b.constI(0);
            ir::Reg t = b.load(vtable, zero);
            ir::Reg r = b.icall(t, {i});
            b.sink(r);
            break;
          }
          case CallKind::kVirtual: {
            // Virtual call: object type load + vtable load + call;
            // the type drifts occasionally like a polymorphic site.
            ir::Reg shifted = b.binImm(BinKind::kShr, i, 8);
            ir::Reg obj = b.binImm(BinKind::kAnd, shifted, 3);
            ir::Reg t = b.load(vtable, obj);
            ir::Reg r = b.icall(t, {i});
            b.sink(r);
            break;
          }
        }
    });
    return m;
}

/** SPEC-CPU2006-flavoured user program: ALU-heavy with sparse calls. */
Module
makeSpecLike()
{
    Module m;
    auto leaves = addLeaves(m);
    std::vector<int64_t> table;
    for (ir::FuncId f : leaves)
        table.push_back(ir::funcAddrValue(f));
    ir::GlobalId vtable = m.addGlobal("vt", std::move(table));
    m.addGlobal("data", std::vector<int64_t>(4096, 3));

    ir::FuncId worker = m.addFunction("worker", 2);
    {
        FunctionBuilder b(m, worker);
        ir::Reg acc = b.bin(BinKind::kXor, b.param(0), b.param(1));
        for (int i = 0; i < 30; ++i)
            acc = b.binImm(BinKind::kAdd, acc, i * 7 + 1);
        ir::Reg idx = b.binImm(BinKind::kAnd, acc, 4095);
        ir::Reg v = b.load(1, idx);
        b.ret(b.bin(BinKind::kAdd, acc, v));
    }
    ir::FuncId main = m.addFunction("spec_main", 0);
    FunctionBuilder b(m, main);
    emitLoop(b, 1500, [&](ir::Reg i) {
        ir::Reg acc = b.binImm(BinKind::kMul, i, 0x9e37);
        for (int k = 0; k < 40; ++k)
            acc = b.binImm(BinKind::kXor, acc, k + 1);
        ir::Reg idx = b.binImm(BinKind::kAnd, acc, 4095);
        ir::Reg mem = b.load(1, idx);
        acc = b.bin(BinKind::kAdd, acc, mem);
        ir::Reg r = b.call(worker, {i, acc});
        b.sink(r);
        // Virtual dispatch on a minority of iterations, as in
        // call-sparse SPEC integer codes.
        ir::Reg low = b.binImm(BinKind::kAnd, i, 3);
        ir::Reg is_virtual = b.binImm(BinKind::kEq, low, 0);
        ir::BlockId vcall = b.newBlock();
        ir::BlockId join = b.newBlock();
        b.condBr(is_virtual, vcall, join);
        b.setBlock(vcall);
        ir::Reg shifted = b.binImm(BinKind::kShr, i, 4);
        ir::Reg sel = b.binImm(BinKind::kAnd, shifted, 3);
        ir::Reg t = b.load(vtable, sel);
        ir::Reg r2 = b.icall(t, {acc});
        b.sink(r2);
        b.br(join);
        b.setBlock(join);
    });
    return m;
}

uint64_t
cyclesOf(Module m, const harden::DefenseConfig& cfg, const char* entry)
{
    harden::applyDefenses(m, cfg);
    uarch::Simulator sim(m);
    ir::FuncId f = m.findFunction(entry);
    sim.run(f, {}); // warm
    sim.clearStats();
    sim.run(f, {});
    return sim.stats().cycles;
}

struct ConfigRow
{
    const char* name;
    harden::DefenseConfig cfg;
    /** Paper Table 1 reference: dcall/icall/vcall ticks, SPEC %. */
    int paper_dcall, paper_icall, paper_vcall;
    double paper_spec;
};

} // namespace
} // namespace pibe

int
main()
{
    using namespace pibe;
    harden::DefenseConfig retp_lvi;
    retp_lvi.retpoline = true;
    retp_lvi.lvi_cfi = true;

    const std::vector<ConfigRow> rows = {
        {"uninstrumented", harden::DefenseConfig::none(), 0, 0, 0, 0.0},
        {"LVI-CFI", harden::DefenseConfig::lviOnly(), 11, 20, 23, 29.4},
        {"retpolines", harden::DefenseConfig::retpolinesOnly(), 1, 21,
         21, 16.1},
        {"retpolines + LVI-CFI", retp_lvi, 14, 53, 54, 44.3},
        {"return retpolines",
         harden::DefenseConfig::retRetpolinesOnly(), 16, 16, 16, 23.2},
        {"all defenses", harden::DefenseConfig::all(), 32, 73, 71,
         62.0},
    };

    // Per-call overhead = (loop-with-calls - empty-loop), normalized,
    // minus the uninstrumented cost of the same call kind.
    auto ticks = [&](CallKind kind, const harden::DefenseConfig& cfg) {
        uint64_t base =
            cyclesOf(makeMicro(CallKind::kBaseline), cfg, "micro_main");
        uint64_t with = cyclesOf(makeMicro(kind), cfg, "micro_main");
        return static_cast<double>(with - base) /
               static_cast<double>(kCalls);
    };

    const double dcall0 =
        ticks(CallKind::kDirect, harden::DefenseConfig::none());
    const double icall0 =
        ticks(CallKind::kIndirect, harden::DefenseConfig::none());
    const double vcall0 =
        ticks(CallKind::kVirtual, harden::DefenseConfig::none());
    const uint64_t spec0 =
        cyclesOf(makeSpecLike(), harden::DefenseConfig::none(),
                 "spec_main");

    Table t({"Defense", "dcall", "icall", "vcall", "spec-like",
             "paper(d/i/v)", "paper spec"});
    for (const auto& row : rows) {
        double d = ticks(CallKind::kDirect, row.cfg) - dcall0;
        double i = ticks(CallKind::kIndirect, row.cfg) - icall0;
        double v = ticks(CallKind::kVirtual, row.cfg) - vcall0;
        uint64_t spec = cyclesOf(makeSpecLike(), row.cfg, "spec_main");
        double spec_ovr = overhead(static_cast<double>(spec),
                                   static_cast<double>(spec0));
        char paper[32];
        std::snprintf(paper, sizeof(paper), "%d / %d / %d",
                      row.paper_dcall, row.paper_icall, row.paper_vcall);
        t.addRow({row.name, fixedStr(d, 1), fixedStr(i, 1),
                  fixedStr(v, 1), percent(spec_ovr), paper,
                  percent(row.paper_spec / 100.0)});
    }
    bench::printTable(
        "Table 1: overhead of control-flow hijacking mitigations",
        "Ticks of overhead per call type (vs uninstrumented) and "
        "slowdown on a SPEC-like user program.",
        t);
    return 0;
}
