/**
 * @file
 * Table 11: forward edges protected vs still vulnerable after applying
 * all transient mitigations. Vulnerable indirect calls are the
 * paravirt hypercalls implemented as inline assembly (which no pass
 * may rewrite); vulnerable indirect jumps are the surviving assembly
 * switch dispatchers. Both protected and vulnerable counts grow with
 * the inlining budget because inlining duplicates call sites.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k);

    struct Column
    {
        const char* label;
        core::OptConfig opt;
    };
    const std::vector<Column> columns = {
        {"no optimization", core::OptConfig::none()},
        {"99% budget", core::OptConfig::icpAndInline(0.99)},
        {"99.9% budget", core::OptConfig::icpAndInline(0.999)},
        {"99.9999% budget", core::OptConfig::icpAndInline(0.999999)},
    };

    Table t({"Statistic", "no opt", "99%", "99.9%", "99.9999%",
             "paper (no opt -> 99.9999%)"});
    std::vector<std::string> def{"Def. ICalls"};
    std::vector<std::string> vuln{"Vuln. ICalls"};
    std::vector<std::string> jumps{"Vuln. IJumps"};
    std::vector<std::string> elided{"Elided ICalls (total promo)"};
    std::vector<std::string> capped{"Capped ICalls (residual)"};
    for (const auto& col : columns) {
        core::BuildReport rep;
        core::buildImage(k.module, profile, col.opt,
                         harden::DefenseConfig::all(), &rep);
        def.push_back(std::to_string(rep.coverage.protected_icalls));
        vuln.push_back(std::to_string(rep.coverage.vulnerable_icalls));
        jumps.push_back(
            std::to_string(rep.coverage.vulnerable_ijumps));
        // Same budget with total promotion: sites whose complete
        // feasible set is fully covered lose the indirect branch
        // entirely (Switchpoline precondition), shrinking the forward
        // surface below even the "protected" row.
        core::OptConfig total = col.opt;
        total.icp_total_promotion = true;
        total.icp_total_promotion_max_targets = 30;
        core::BuildReport trep;
        core::buildImage(k.module, profile, total,
                         harden::DefenseConfig::all(), &trep);
        elided.push_back(
            std::to_string(trep.coverage.elided_icalls));
        capped.push_back(
            std::to_string(trep.coverage.capped_residual_icalls));
    }
    def.push_back("20927 -> 26066");
    vuln.push_back("41 -> 170");
    jumps.push_back("5 -> 5");
    elided.push_back("n/a (beyond-paper)");
    capped.push_back("n/a (beyond-paper)");
    t.addRow(def);
    t.addRow(vuln);
    t.addRow(jumps);
    t.addRow(elided);
    t.addRow(capped);

    bench::printTable(
        "Table 11: forward edges protected/vulnerable (all defenses)",
        "Vulnerable icalls = inline-assembly paravirt sites; "
        "vulnerable ijumps = assembly switch dispatch. Jump tables are "
        "disabled, so only the 5 assembly dispatchers remain. Elided "
        "icalls: fallback indirect branches removed by target-set "
        "total promotion; capped: sites whose per-site cap left "
        "residual indirect surface.",
        t);
    return 0;
}
