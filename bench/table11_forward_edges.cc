/**
 * @file
 * Table 11: forward edges protected vs still vulnerable after applying
 * all transient mitigations. Vulnerable indirect calls are the
 * paravirt hypercalls implemented as inline assembly (which no pass
 * may rewrite); vulnerable indirect jumps are the surviving assembly
 * switch dispatchers. Both protected and vulnerable counts grow with
 * the inlining budget because inlining duplicates call sites.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k);

    struct Column
    {
        const char* label;
        core::OptConfig opt;
    };
    const std::vector<Column> columns = {
        {"no optimization", core::OptConfig::none()},
        {"99% budget", core::OptConfig::icpAndInline(0.99)},
        {"99.9% budget", core::OptConfig::icpAndInline(0.999)},
        {"99.9999% budget", core::OptConfig::icpAndInline(0.999999)},
    };

    Table t({"Statistic", "no opt", "99%", "99.9%", "99.9999%",
             "paper (no opt -> 99.9999%)"});
    std::vector<std::string> def{"Def. ICalls"};
    std::vector<std::string> vuln{"Vuln. ICalls"};
    std::vector<std::string> jumps{"Vuln. IJumps"};
    for (const auto& col : columns) {
        core::BuildReport rep;
        core::buildImage(k.module, profile, col.opt,
                         harden::DefenseConfig::all(), &rep);
        def.push_back(std::to_string(rep.coverage.protected_icalls));
        vuln.push_back(std::to_string(rep.coverage.vulnerable_icalls));
        jumps.push_back(
            std::to_string(rep.coverage.vulnerable_ijumps));
    }
    def.push_back("20927 -> 26066");
    vuln.push_back("41 -> 170");
    jumps.push_back("5 -> 5");
    t.addRow(def);
    t.addRow(vuln);
    t.addRow(jumps);

    bench::printTable(
        "Table 11: forward edges protected/vulnerable (all defenses)",
        "Vulnerable icalls = inline-assembly paravirt sites; "
        "vulnerable ijumps = assembly switch dispatch. Jump tables are "
        "disabled, so only the 5 assembly dispatchers remain.",
        t);
    return 0;
}
