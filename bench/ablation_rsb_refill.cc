/**
 * @file
 * Ablation (§6.4): RSB refilling vs return retpolines.
 *
 * Linux's ad-hoc Ret2spec mitigation stuffs the RSB with benign
 * entries on kernel entry. That defeats an attacker who can only
 * pollute predictor state *before* entry (userspace-to-kernel), but
 * not one who keeps poisoning from a sibling context while the kernel
 * runs — and several CPU lines never got refilling at all. Return
 * retpolines close every RSB scenario. This bench mounts both attacker
 * timings against both mitigations and compares their cost.
 */
#include "bench/bench_util.h"

#include "uarch/simulator.h"
#include "uarch/speculation.h"

namespace pibe {
namespace {

uint64_t
retHits(const ir::Module& image, const kernel::KernelInfo& info,
        bool rsb_refill, uarch::TransientAttacker::Timing timing)
{
    uarch::CostParams params;
    params.rsb_refill_on_entry = rsb_refill;
    uarch::Simulator sim(image, params);
    sim.setTimingEnabled(false);
    ir::FuncId gadget = image.findFunction("drv0_h0");
    uarch::TransientAttacker attacker(uarch::AttackKind::kRet2spec,
                                      sim.layout().funcBase(gadget),
                                      timing);
    workload::KernelHandle handle(sim, info);
    handle.boot();
    auto wl = workload::makeLmbenchTest("read");
    wl->setup(handle);
    sim.setObserver(&attacker);
    for (uint64_t i = 0; i < 200; ++i)
        wl->iteration(handle, i);
    return attacker.returnHits();
}

double
geomeanOverheadOf(const kernel::KernelImage& k,
                  const std::map<std::string, double>& base,
                  const ir::Module& image, bool rsb_refill)
{
    core::MeasureConfig cfg = bench::measureConfig();
    cfg.params.rsb_refill_on_entry = rsb_refill;
    std::vector<double> overheads;
    for (auto& wl : workload::makeLmbenchSuite()) {
        double lat =
            core::measureWorkload(image, k.info, *wl, cfg).latency_us;
        overheads.push_back(overhead(lat, base.at(wl->name())));
    }
    return geomeanOverhead(overheads);
}

} // namespace
} // namespace pibe

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k, 40);

    ir::Module plain =
        core::buildImage(k.module, profile, core::OptConfig::none(),
                         harden::DefenseConfig::none());
    ir::Module retret =
        core::buildImage(k.module, profile, core::OptConfig::none(),
                         harden::DefenseConfig::retRetpolinesOnly());

    using Timing = uarch::TransientAttacker::Timing;
    Table t({"mitigation", "entry-time poisoning",
             "continuous poisoning", "LMBench overhead"});
    auto verdict = [](uint64_t hits) {
        return hits == 0 ? std::string("blocked")
                         : std::to_string(hits) + " gadget hits";
    };
    auto base = bench::lmbenchLatencies(plain, k.info);
    t.addRow({"none",
              verdict(retHits(plain, k.info, false, Timing::kEntryOnly)),
              verdict(retHits(plain, k.info, false,
                              Timing::kContinuous)),
              "0.0%"});
    t.addRow({"RSB refill on kernel entry",
              verdict(retHits(plain, k.info, true, Timing::kEntryOnly)),
              verdict(retHits(plain, k.info, true, Timing::kContinuous)),
              percent(geomeanOverheadOf(k, base, plain, true))});
    t.addRow({"return retpolines",
              verdict(retHits(retret, k.info, false,
                              Timing::kEntryOnly)),
              verdict(retHits(retret, k.info, false,
                              Timing::kContinuous)),
              percent(geomeanOverheadOf(k, base, retret, false))});
    ir::Module retret_opt = core::buildImage(
        k.module, profile, core::OptConfig::icpAndInline(0.999999, true),
        harden::DefenseConfig::retRetpolinesOnly());
    t.addRow({"return retpolines + PIBE",
              verdict(retHits(retret_opt, k.info, false,
                              Timing::kEntryOnly)),
              verdict(retHits(retret_opt, k.info, false,
                              Timing::kContinuous)),
              percent(geomeanOverheadOf(k, base, retret_opt, false))});

    bench::printTable(
        "Ablation: RSB refilling vs return retpolines (§6.4)",
        "Ret2spec against the read() path. Refilling only blocks "
        "state poisoned before kernel entry; return retpolines block "
        "every scenario, and PIBE makes them affordable.",
        t);
    return 0;
}
