/**
 * @file
 * Table 10: how aggressive is PIBE really? Initial promotion/inlining
 * candidates as a percentage of *all* kernel indirect branches (icall
 * sites for ICP; return sites for inlining). The paper's answer: at
 * most ~3% of indirect branches are even candidates below the maximum
 * budget (~7.5% at 99.9999%).
 */
#include "bench/bench_util.h"

namespace pibe {
namespace {

uint32_t
countRets(const ir::Module& m)
{
    uint32_t n = 0;
    for (const auto& f : m.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts)
                n += (inst.op == ir::Opcode::kRet);
        }
    }
    return n;
}

} // namespace
} // namespace pibe

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k);

    const double budgets[] = {0.99, 0.999, 0.999999};
    const char* labels[] = {"99%", "99.9%", "99.9999%"};

    Table t({"Statistic", "icp 99%", "icp 99.9%", "icp 99.9999%",
             "inl 99%", "inl 99.9%", "inl 99.9999%"});
    std::vector<std::string> branches{"Ind. Branches"};
    std::vector<std::string> cands{"Candidates"};

    for (int i = 0; i < 3; ++i) {
        core::OptConfig opt;
        opt.icp_budget = budgets[i];
        opt.inline_budget = budgets[i];
        core::BuildReport rep;
        ir::Module img =
            core::buildImage(k.module, profile, opt,
                             harden::DefenseConfig::all(), &rep);
        (void)img;
        branches.push_back(std::to_string(rep.icp.total_icall_sites));
        // Candidate icall sites with profile data / all icall sites.
        cands.push_back(percent(
            static_cast<double>(rep.icp.candidate_sites) /
            static_cast<double>(rep.icp.total_icall_sites)));
    }
    uint32_t rets = countRets(k.module);
    for (int i = 0; i < 3; ++i) {
        core::OptConfig opt;
        opt.icp_budget = budgets[i];
        opt.inline_budget = budgets[i];
        core::BuildReport rep;
        core::buildImage(k.module, profile, opt,
                         harden::DefenseConfig::all(), &rep);
        (void)labels;
        branches.push_back(std::to_string(rets));
        // Inlining candidates (profiled direct sites, each of which
        // elides a return) / all return sites.
        cands.push_back(
            percent(static_cast<double>(rep.inlining.candidate_sites) /
                    static_cast<double>(rets)));
    }
    t.addRow(branches);
    t.addRow(cands);
    t.addSeparator();
    t.addRow({"paper Ind. Branches", "20927", "20927", "20927",
              "133005", "133169", "133973"});
    t.addRow({"paper Candidates", "0.59%", "1.13%", "3.09%", "1.14%",
              "2.54%", "7.5%"});

    bench::printTable(
        "Table 10: optimization candidates vs all indirect branches",
        "Candidates touched by each algorithm as a share of the "
        "kernel's indirect calls (icp) and returns (inlining). Note: "
        "our synthetic kernel profiles a larger share of its sites "
        "than Linux because it has proportionally less cold code.",
        t);
    return 0;
}
