/**
 * @file
 * Table 9: inlining weight *not* elided, by inhibitor — Rule 2 (caller
 * complexity over 12000 units), Rule 3 (callee over 3000 units), and
 * "other" (optnone callers, noinline callees, recursion). The paper
 * finds Rule 3 blocks ~4x more weight than Rule 2 and that together
 * they cost only a few percent of beneficial inlining.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k);

    Table t({"budget", "Ovr.", "Rule 2", "Rule 3", "other"});
    const double budgets[] = {0.99, 0.999, 0.999999};
    const char* labels[] = {"99%", "99.9%", "99.9999%"};
    for (int i = 0; i < 3; ++i) {
        core::OptConfig opt = core::OptConfig::icpAndInline(budgets[i]);
        core::BuildReport rep;
        core::buildImage(k.module, profile, opt,
                         harden::DefenseConfig::all(), &rep);
        const auto& a = rep.inlining;
        auto cell = [&](uint64_t w) {
            return std::to_string(w) + " (" +
                   percent(static_cast<double>(w) /
                           static_cast<double>(a.total_weight)) +
                   ")";
        };
        t.addRow({labels[i], std::to_string(a.total_weight),
                  cell(a.blocked_rule2_weight),
                  cell(a.blocked_rule3_weight),
                  cell(a.blocked_other_weight)});
    }
    t.addSeparator();
    t.addRow({"paper 99%", "13745m", "96m (0.70%)", "461m (3.35%)",
              "265m (1.93%)"});
    t.addRow({"paper 99.9999%", "13889m", "133m (0.96%)",
              "473m (3.41%)", "264m (1.9%)"});

    bench::printTable(
        "Table 9: inline weight blocked by the size heuristics",
        "Percentages are relative to the overall profiled call weight "
        "eligible at each budget.",
        t);
    return 0;
}
