/**
 * @file
 * Figure 1: the motivating example for Rule 3. Function `bar` calls
 * foo_1 (edge weight 1000, inline cost ~11900), foo_2 (500, ~300) and
 * foo_3 (500, ~200). A greedy inliner with only Rules 1-2 spends bar's
 * entire complexity budget (12000) on foo_1 and then cannot inline
 * foo_2/foo_3 — eliding 1000 counts and leaving no budget. With Rule 3
 * the oversized foo_1 is rejected, foo_2 and foo_3 are inlined — the
 * same 1000 counts elided with most of the budget left for more
 * inlining.
 */
#include "bench/bench_util.h"

#include "analysis/inline_cost.h"
#include "ir/builder.h"
#include "opt/inliner.h"

namespace pibe {
namespace {

using ir::BinKind;
using ir::FunctionBuilder;
using ir::Module;

ir::FuncId
makeFoo(Module& m, const std::string& name, int64_t cost_units)
{
    ir::FuncId f = m.addFunction(name, 1);
    FunctionBuilder b(m, f);
    ir::Reg acc = b.param(0);
    for (int64_t i = 0; i * 5 < cost_units - 5; ++i)
        acc = b.binImm(BinKind::kAdd, acc, i + 1);
    b.ret(acc);
    return f;
}

struct Fig1
{
    Module m;
    ir::FuncId bar, foo1, foo2, foo3;
    profile::EdgeProfile profile;
};

Fig1
makeFig1()
{
    Fig1 f;
    f.foo1 = makeFoo(f.m, "foo_1", 11900);
    f.foo2 = makeFoo(f.m, "foo_2", 300);
    f.foo3 = makeFoo(f.m, "foo_3", 200);
    f.bar = f.m.addFunction("bar", 1);
    FunctionBuilder b(f.m, f.bar);
    ir::Reg r1 = b.call(f.foo1, {b.param(0)});
    ir::Reg r2 = b.call(f.foo2, {r1});
    ir::Reg r3 = b.call(f.foo3, {r2});
    b.ret(r3);
    const auto& insts = f.m.func(f.bar).blocks[0].insts;
    f.profile.addDirect(insts[0].site_id, 1000);
    f.profile.addDirect(insts[1].site_id, 500);
    f.profile.addDirect(insts[2].site_id, 500);
    f.profile.addInvocation(f.foo1, 1000);
    f.profile.addInvocation(f.foo2, 500);
    f.profile.addInvocation(f.foo3, 500);
    f.profile.addInvocation(f.bar, 1000);
    return f;
}

} // namespace
} // namespace pibe

int
main()
{
    using namespace pibe;

    Table t({"configuration", "inlined sites", "weight elided",
             "blocked (rule2)", "blocked (rule3)", "bar cost after"});

    // Rules 1+2 only: Rule 3 disabled by setting its threshold high.
    {
        Fig1 f = makeFig1();
        opt::PibeInlinerConfig cfg;
        cfg.budget = 1.0;
        cfg.rule3_callee_threshold = 1 << 30;
        cfg.cleanup_callers = false;
        auto audit = opt::runPibeInliner(f.m, f.profile, cfg);
        t.addRow({"Rules 1+2 (greedy by weight)",
                  std::to_string(audit.inlined_sites),
                  std::to_string(audit.inlined_weight),
                  std::to_string(audit.blocked_rule2_weight),
                  std::to_string(audit.blocked_rule3_weight),
                  std::to_string(
                      analysis::functionCost(f.m.func(f.bar)))});
    }
    // Full PIBE: Rule 3 at its default 3000.
    {
        Fig1 f = makeFig1();
        opt::PibeInlinerConfig cfg;
        cfg.budget = 1.0;
        cfg.cleanup_callers = false;
        auto audit = opt::runPibeInliner(f.m, f.profile, cfg);
        t.addRow({"Rules 1+2+3 (PIBE)",
                  std::to_string(audit.inlined_sites),
                  std::to_string(audit.inlined_weight),
                  std::to_string(audit.blocked_rule2_weight),
                  std::to_string(audit.blocked_rule3_weight),
                  std::to_string(
                      analysis::functionCost(f.m.func(f.bar)))});
    }

    bench::printTable(
        "Figure 1: why Rule 3 exists",
        "bar -> foo_1 (weight 1000, cost 11900), foo_2 (500, 300), "
        "foo_3 (500, 200); caller budget 12000. Without Rule 3, foo_1 "
        "monopolizes the budget for the same elided weight.",
        t);
    return 0;
}
