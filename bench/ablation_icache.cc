/**
 * @file
 * Ablation: the i-cache as inlining's counterweight.
 *
 * DESIGN.md's claim: without instruction-cache pressure, "inline
 * everything" is a free lunch and the paper's size heuristics (Rules
 * 2-3) would be pointless. This bench measures the all-defenses kernel
 * at the maximum budget with lax heuristics (most aggressive inlining)
 * against the heuristic-governed configuration, across i-cache
 * intensities: no miss penalty, the default 32 KiB cache, and a
 * pressure-cooker 8 KiB cache.
 */
#include "bench/bench_util.h"

namespace pibe {
namespace {

double
geomeanWith(const kernel::KernelImage& k, const ir::Module& baseline,
            const ir::Module& image, uint32_t icache_bytes,
            uint32_t miss_penalty)
{
    core::MeasureConfig cfg = bench::measureConfig();
    cfg.params.icache_bytes = icache_bytes;
    cfg.params.icache_miss_penalty = miss_penalty;
    std::vector<double> overheads;
    for (auto& wl : workload::makeLmbenchSuite()) {
        auto wl2 = workload::makeLmbenchTest(wl->name());
        double base =
            core::measureWorkload(baseline, k.info, *wl, cfg).latency_us;
        double lat =
            core::measureWorkload(image, k.info, *wl2, cfg).latency_us;
        overheads.push_back(overhead(lat, base));
    }
    return geomeanOverhead(overheads);
}

} // namespace
} // namespace pibe

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k, 60);

    ir::Module lto =
        core::buildImage(k.module, profile, core::OptConfig::none(),
                         harden::DefenseConfig::none());
    // Heuristic-governed vs rules-off aggressive inlining.
    core::OptConfig governed = core::OptConfig::icpAndInline(0.999999);
    core::OptConfig rules_off = core::OptConfig::icpAndInline(0.999999);
    rules_off.lax_heuristics = true;
    rules_off.lax_budget = 0.999999; // lax everywhere: no size rules
    core::BuildReport rep_governed, rep_off;
    ir::Module img_governed =
        core::buildImage(k.module, profile, governed,
                         harden::DefenseConfig::all(), &rep_governed);
    ir::Module img_off =
        core::buildImage(k.module, profile, rules_off,
                         harden::DefenseConfig::all(), &rep_off);

    std::printf("\nimage size: rules on %llu bytes, rules off %llu "
                "bytes (+%.1f%%)\n",
                static_cast<unsigned long long>(rep_governed.image_size),
                static_cast<unsigned long long>(rep_off.image_size),
                100.0 * (static_cast<double>(rep_off.image_size) /
                             static_cast<double>(rep_governed.image_size) -
                         1.0));

    struct Cache
    {
        const char* label;
        uint32_t bytes;
        uint32_t penalty;
    };
    const Cache caches[] = {
        {"no i-cache pressure (penalty 0)", 32 * 1024, 0},
        {"default 32 KiB i-cache", 32 * 1024, 14},
        {"small 8 KiB i-cache", 8 * 1024, 14},
        {"tiny 4 KiB i-cache", 4 * 1024, 14},
        {"tiny 4 KiB, slow memory (penalty 40)", 4 * 1024, 40},
    };

    Table t({"i-cache model", "rules 2+3 on", "size rules off",
             "winner"});
    for (const Cache& c : caches) {
        double on = geomeanWith(k, lto, img_governed, c.bytes, c.penalty);
        double off = geomeanWith(k, lto, img_off, c.bytes, c.penalty);
        t.addRow({c.label, percent(on), percent(off),
                  off < on ? "rules off" : "rules on"});
    }
    bench::printTable(
        "Ablation: i-cache pressure vs the size heuristics",
        "All-defenses overhead vs the LTO baseline under the same "
        "cache model. Finding: at this kernel's scale the hot working "
        "set fits even small caches (inlining *improves* locality by "
        "compacting call chains), so the size rules mostly cost "
        "performance here -- consistent with the paper's observation "
        "that the heuristics are counterproductive inside the hottest "
        "budget (its \"lax heuristics\" configuration) and that their "
        "real value is bounding image growth (Table 12: rules keep "
        "growth to 5-30%; unbounded inlining here costs +29% image "
        "size for the same speed).",
        t);
    return 0;
}
