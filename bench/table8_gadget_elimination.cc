/**
 * @file
 * Table 8: indirect-branch gadgets eliminated by PIBE per optimization
 * budget — promoted indirect-call weight/sites/targets and inlined
 * (elided) return weight/sites. "Weight" rows are execution counts;
 * "sites" rows are code locations.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k);

    Table t({"budget", "icall weight", "call sites", "call targets",
             "return weight", "return sites"});
    const double budgets[] = {0.99, 0.999, 0.999999};
    const char* labels[] = {"99%", "99.9%", "99.9999%"};

    core::BuildReport last;
    for (int i = 0; i < 3; ++i) {
        core::OptConfig opt;
        opt.icp_budget = budgets[i];
        opt.inline_budget = budgets[i];
        core::BuildReport rep;
        core::buildImage(k.module, profile, opt,
                         harden::DefenseConfig::all(), &rep);
        auto pct = [](uint64_t part, uint64_t whole) {
            return whole == 0
                       ? std::string("-")
                       : percent(static_cast<double>(part) /
                                 static_cast<double>(whole));
        };
        t.addRow({labels[i],
                  std::to_string(rep.icp.promoted_weight) + " (" +
                      pct(rep.icp.promoted_weight,
                          rep.icp.total_weight) + ")",
                  std::to_string(rep.icp.promoted_sites) + " (" +
                      pct(rep.icp.promoted_sites,
                          rep.icp.candidate_sites) + ")",
                  std::to_string(rep.icp.promoted_targets) + " (" +
                      pct(rep.icp.promoted_targets,
                          rep.icp.candidate_targets) + ")",
                  std::to_string(rep.inlining.inlined_weight) + " (" +
                      pct(rep.inlining.inlined_weight,
                          rep.inlining.total_weight) + ")",
                  std::to_string(rep.inlining.inlined_sites) + " (" +
                      pct(rep.inlining.inlined_sites,
                          rep.inlining.candidate_sites) + ")"});
        last = rep;
    }
    t.addSeparator();
    t.addRow({"total candidates",
              std::to_string(last.icp.total_weight),
              std::to_string(last.icp.candidate_sites),
              std::to_string(last.icp.candidate_targets),
              std::to_string(last.inlining.total_weight) + " (varies)",
              std::to_string(last.inlining.candidate_sites) +
                  " (varies)"});
    t.addRow({"paper @99.9999%", "1258m (100.0%)", "647 (89.7%)",
              "1130 (85.6%)", "13018m (93.7%)", "9969 (86.1%)"});

    bench::printTable(
        "Table 8: indirect branch gadgets eliminated by PIBE",
        "Counts rise with budget for forward edges; inlining shows "
        "diminishing returns due to the size heuristics (paper §8.6). "
        "Note: the inlining totals vary with budget because promotion "
        "creates new inlining candidates.",
        t);
    return 0;
}
