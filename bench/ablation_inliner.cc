/**
 * @file
 * Ablation: the constant-ratio heuristic (§5.2 Rule 1).
 *
 * When a callee is inlined, the call sites copied into the caller
 * inherit scaled execution counts so the greedy worklist can keep
 * chasing hot chains upward. With propagation disabled, inlining stops
 * at depth one: inherited sites carry no weight, are never revisited,
 * and their returns stay hardened.
 */
#include "bench/bench_util.h"

#include "opt/inliner.h"

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k, 60);

    ir::Module lto =
        core::buildImage(k.module, profile, core::OptConfig::none(),
                         harden::DefenseConfig::none());
    auto base = bench::lmbenchLatencies(lto, k.info);

    Table t({"configuration", "inlined sites", "weight elided",
             "LMBench overhead (all defenses)"});
    for (bool propagate : {true, false}) {
        // Run the pipeline manually so the inliner flag is reachable.
        ir::Module image = k.module;
        profile::EdgeProfile working = profile;
        opt::IcpConfig icp;
        icp.budget = 0.99999;
        opt::runIcp(image, working, icp);
        opt::PibeInlinerConfig cfg;
        cfg.budget = 0.999999;
        cfg.propagate_inherited_counts = propagate;
        auto audit = opt::runPibeInliner(image, working, cfg);
        harden::applyDefenses(image, harden::DefenseConfig::all());

        auto ovr =
            bench::overheadsVs(base,
                               bench::lmbenchLatencies(image, k.info));
        t.addRow({propagate ? "constant-ratio propagation (PIBE)"
                            : "no inherited counts (ablated)",
                  std::to_string(audit.inlined_sites),
                  std::to_string(audit.inlined_weight),
                  percent(ovr.geomean)});
    }
    bench::printTable(
        "Ablation: constant-ratio count propagation (§5.2)",
        "Without inherited counts the greedy inliner cannot follow "
        "hot call chains created by its own inlining, leaving their "
        "returns hardened.",
        t);
    return 0;
}
