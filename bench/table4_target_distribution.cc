/**
 * @file
 * Table 4: distribution of indirect call sites by the number of
 * distinct targets they invoke in the profiling workload. Multi-target
 * sites are the case where JumpSwitches must periodically fall back to
 * a learning retpoline while PIBE's unlimited-target promotion keeps
 * them on direct paths (§8.2).
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k);

    // Bucket profiled indirect sites by target count: 1..6, >6.
    std::map<size_t, uint32_t> buckets;
    uint32_t over6 = 0;
    for (const auto& [site, targets] : profile.indirectSites()) {
        (void)site;
        size_t n = targets.size();
        if (n > 6)
            ++over6;
        else
            ++buckets[n];
    }

    Table t({"Targets", "1", "2", "3", "4", "5", "6", ">6"});
    std::vector<std::string> row{"Indirect Calls"};
    for (size_t n = 1; n <= 6; ++n) {
        auto it = buckets.find(n);
        row.push_back(std::to_string(
            it == buckets.end() ? 0u : it->second));
    }
    row.push_back(std::to_string(over6));
    t.addRow(row);
    t.addRow({"paper", "517", "109", "34", "23", "6", "12", "22"});

    bench::printTable(
        "Table 4: indirect calls by number of profiled targets",
        "Counts of indirect call sites whose value profile contains N "
        "distinct targets (LMBench workload).",
        t);
    return 0;
}
