/**
 * @file
 * Host-side google-benchmark microbenchmarks for the simulator itself
 * (instructions per wall-clock second, pipeline pass throughput).
 * These measure the reproduction's own engine, not the paper's
 * results — the table/figure binaries alongside this one use
 * simulated cycles, which wall-clock timing cannot express.
 *
 * Besides the google-benchmark suite, `--interpreter-json FILE` runs
 * the decoded hot loop and the pre-rewrite reference loop on the same
 * syscall workload and writes FILE (BENCH_interpreter.json) with both
 * throughputs, their ratio, and decode cost — the per-PR perf record
 * tools/run_all_tables.sh merges into the bench metrics.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "opt/cleanup.h"
#include "opt/icp.h"
#include "opt/inliner.h"
#include "uarch/simulator.h"

namespace pibe {
namespace {

const kernel::KernelImage&
sharedKernel()
{
    static kernel::KernelImage image = [] {
        kernel::KernelConfig cfg;
        cfg.num_drivers = 32;
        return kernel::buildKernel(cfg);
    }();
    return image;
}

const profile::EdgeProfile&
sharedProfile()
{
    static profile::EdgeProfile p = [] {
        const auto& k = sharedKernel();
        auto suite = workload::makeLmbenchSuite();
        return core::collectProfile(k.module, k.info, suite, 30);
    }();
    return p;
}

void
syscallThroughput(benchmark::State& state, bool reference)
{
    const auto& k = sharedKernel();
    uarch::Simulator sim(k.module);
    sim.setUseReferencePath(reference);
    workload::KernelHandle handle(sim, k.info);
    handle.boot();
    uint64_t instructions = 0;
    for (auto _ : state) {
        sim.clearStats();
        handle.syscall(kernel::sysno::kRead, 3, 0, 4);
        instructions += sim.stats().instructions;
    }
    state.counters["sim_instructions_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
BM_SimulatorSyscallThroughput(benchmark::State& state)
{
    syscallThroughput(state, /*reference=*/false);
}
BENCHMARK(BM_SimulatorSyscallThroughput);

/** The pre-rewrite loop on the same workload: the denominator of the
 *  decoded engine's speedup. */
void
BM_SimulatorSyscallThroughputReference(benchmark::State& state)
{
    syscallThroughput(state, /*reference=*/true);
}
BENCHMARK(BM_SimulatorSyscallThroughputReference);

void
BM_KernelBuild(benchmark::State& state)
{
    kernel::KernelConfig cfg;
    cfg.num_drivers = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        auto image = kernel::buildKernel(cfg);
        benchmark::DoNotOptimize(image.module.numFunctions());
    }
}
BENCHMARK(BM_KernelBuild)->Arg(8)->Arg(32)->Arg(160);

void
BM_PibeInliner(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        ir::Module m = sharedKernel().module;  // copy
        profile::EdgeProfile p = sharedProfile();
        state.ResumeTiming();
        opt::PibeInlinerConfig cfg;
        cfg.budget =
            static_cast<double>(state.range(0)) / 1000.0;
        auto audit = opt::runPibeInliner(m, p, cfg);
        benchmark::DoNotOptimize(audit.inlined_sites);
    }
}
BENCHMARK(BM_PibeInliner)->Arg(990)->Arg(999)->Arg(1000);

void
BM_Icp(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        ir::Module m = sharedKernel().module;
        profile::EdgeProfile p = sharedProfile();
        state.ResumeTiming();
        auto audit = opt::runIcp(m, p, {});
        benchmark::DoNotOptimize(audit.promoted_sites);
    }
}
BENCHMARK(BM_Icp);

void
BM_CleanupModule(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        ir::Module m = sharedKernel().module;
        state.ResumeTiming();
        opt::cleanupModule(m);
        benchmark::DoNotOptimize(m.numFunctions());
    }
}
BENCHMARK(BM_CleanupModule);

// ---------------------------------------------------------------------
// --interpreter-json: decoded vs reference throughput, as JSON.

/** Simulated instructions per host second over >= min_seconds of the
 *  read-syscall workload (after a fixed warmup). */
double
syscallRate(bool reference, double min_seconds)
{
    using Clock = std::chrono::steady_clock;
    const auto& k = sharedKernel();
    uarch::Simulator sim(k.module);
    sim.setUseReferencePath(reference);
    workload::KernelHandle handle(sim, k.info);
    handle.boot();
    for (int i = 0; i < 200; ++i)
        handle.syscall(kernel::sysno::kRead, 3, 0, 4);
    sim.clearStats();
    const Clock::time_point t0 = Clock::now();
    double elapsed = 0;
    do {
        for (int i = 0; i < 1000; ++i)
            handle.syscall(kernel::sysno::kRead, 3, 0, 4);
        elapsed = std::chrono::duration<double>(Clock::now() - t0)
                      .count();
    } while (elapsed < min_seconds);
    return static_cast<double>(sim.stats().instructions) / elapsed;
}

int
writeInterpreterJson(const char* path)
{
    using Clock = std::chrono::steady_clock;
    const auto& k = sharedKernel();

    const Clock::time_point t0 = Clock::now();
    const uarch::DecodedModule decoded(k.module);
    const double decode_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();

    const double reference = syscallRate(/*reference=*/true, 2.0);
    const double hot = syscallRate(/*reference=*/false, 2.0);

    std::FILE* out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out,
                 "  \"benchmark\": \"read syscall, 32-driver kernel\",\n");
    std::fprintf(out, "  \"decoded_minstr_per_s\": %.3f,\n", hot / 1e6);
    std::fprintf(out, "  \"reference_minstr_per_s\": %.3f,\n",
                 reference / 1e6);
    std::fprintf(out, "  \"speedup\": %.3f,\n", hot / reference);
    std::fprintf(out, "  \"decode_ms\": %.3f,\n", decode_ms);
    std::fprintf(out, "  \"decoded_bytes\": %zu,\n",
                 decoded.decodedBytes());
    std::fprintf(out, "  \"decoded_insts\": %zu\n",
                 decoded.code().size());
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("interpreter: decoded %.2f Minstr/s, reference %.2f "
                "Minstr/s (%.2fx) -> %s\n",
                hot / 1e6, reference / 1e6, hot / reference, path);
    return 0;
}

} // namespace
} // namespace pibe

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--interpreter-json") == 0 &&
            i + 1 < argc)
            return pibe::writeInterpreterJson(argv[i + 1]);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
