/**
 * @file
 * Host-side google-benchmark microbenchmarks for the simulator itself
 * (instructions per wall-clock second, pipeline pass throughput).
 * These measure the reproduction's own engine, not the paper's
 * results — the table/figure binaries alongside this one use
 * simulated cycles, which wall-clock timing cannot express.
 *
 * Besides the google-benchmark suite, `--interpreter-json FILE` runs
 * the dispatch-cost harness on the same syscall workload and writes
 * FILE (BENCH_interpreter.json): decoded-engine throughput per
 * dispatch configuration (threaded/switch x fused/unfused), the
 * pre-rewrite reference loop as the speedup denominator, per-family
 * superinstruction coverage (static sites + dynamic executions), the
 * top decode-time digrams the fusion set was chosen from, and a
 * provenance block (git sha, compiler, CPU model, dispatch mode) so
 * recorded numbers are attributable to a machine and build.
 *
 * Throughput methodology: each configuration reports its *peak*
 * 1000-syscall window over >= 2 s of measurement. A window (~1.5 ms)
 * is long against clock resolution but short against scheduler
 * quanta, so on a shared/noisy host the peak window reflects the
 * engine's actual speed rather than whatever else the machine was
 * doing — whole-run averages on a loaded 1-core box were observed to
 * swing by 2x run to run, while the peak window is stable.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ir/printer.h"
#include "opt/cleanup.h"
#include "opt/icp.h"
#include "opt/inliner.h"
#include "uarch/simulator.h"

namespace pibe {
namespace {

const kernel::KernelImage&
sharedKernel()
{
    static kernel::KernelImage image = [] {
        kernel::KernelConfig cfg;
        cfg.num_drivers = 32;
        return kernel::buildKernel(cfg);
    }();
    return image;
}

const profile::EdgeProfile&
sharedProfile()
{
    static profile::EdgeProfile p = [] {
        const auto& k = sharedKernel();
        auto suite = workload::makeLmbenchSuite();
        return core::collectProfile(k.module, k.info, suite, 30);
    }();
    return p;
}

void
syscallThroughput(benchmark::State& state, bool reference)
{
    const auto& k = sharedKernel();
    uarch::Simulator sim(k.module);
    sim.setUseReferencePath(reference);
    workload::KernelHandle handle(sim, k.info);
    handle.boot();
    uint64_t instructions = 0;
    for (auto _ : state) {
        sim.clearStats();
        handle.syscall(kernel::sysno::kRead, 3, 0, 4);
        instructions += sim.stats().instructions;
    }
    state.counters["sim_instructions_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
BM_SimulatorSyscallThroughput(benchmark::State& state)
{
    syscallThroughput(state, /*reference=*/false);
}
BENCHMARK(BM_SimulatorSyscallThroughput);

/** The pre-rewrite loop on the same workload: the denominator of the
 *  decoded engine's speedup. */
void
BM_SimulatorSyscallThroughputReference(benchmark::State& state)
{
    syscallThroughput(state, /*reference=*/true);
}
BENCHMARK(BM_SimulatorSyscallThroughputReference);

void
BM_KernelBuild(benchmark::State& state)
{
    kernel::KernelConfig cfg;
    cfg.num_drivers = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        auto image = kernel::buildKernel(cfg);
        benchmark::DoNotOptimize(image.module.numFunctions());
    }
}
BENCHMARK(BM_KernelBuild)->Arg(8)->Arg(32)->Arg(160);

void
BM_PibeInliner(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        ir::Module m = sharedKernel().module;  // copy
        profile::EdgeProfile p = sharedProfile();
        state.ResumeTiming();
        opt::PibeInlinerConfig cfg;
        cfg.budget =
            static_cast<double>(state.range(0)) / 1000.0;
        auto audit = opt::runPibeInliner(m, p, cfg);
        benchmark::DoNotOptimize(audit.inlined_sites);
    }
}
BENCHMARK(BM_PibeInliner)->Arg(990)->Arg(999)->Arg(1000);

void
BM_Icp(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        ir::Module m = sharedKernel().module;
        profile::EdgeProfile p = sharedProfile();
        state.ResumeTiming();
        auto audit = opt::runIcp(m, p, {});
        benchmark::DoNotOptimize(audit.promoted_sites);
    }
}
BENCHMARK(BM_Icp);

void
BM_CleanupModule(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        ir::Module m = sharedKernel().module;
        state.ResumeTiming();
        opt::cleanupModule(m);
        benchmark::DoNotOptimize(m.numFunctions());
    }
}
BENCHMARK(BM_CleanupModule);

// ---------------------------------------------------------------------
// --interpreter-json: the dispatch-cost harness, as JSON.

/** One measured interpreter configuration. */
struct RateConfig
{
    bool reference = false; ///< Pre-rewrite loop (ignores the rest).
    bool fuse = true;       ///< Decode-time superinstruction fusion.
    uarch::Simulator::DispatchMode mode =
        uarch::Simulator::DispatchMode::kThreaded;
};

/**
 * Peak simulated-instructions-per-host-second over 1000-syscall
 * windows, measured for >= min_seconds of the read-syscall workload
 * (after a fixed warmup). See the file comment for why peak-window
 * beats a whole-run average on shared hosts.
 */
double
syscallRate(const RateConfig& cfg, double min_seconds)
{
    using Clock = std::chrono::steady_clock;
    const auto& k = sharedKernel();
    const auto decoded = std::make_shared<const uarch::DecodedModule>(
        k.module, cfg.fuse);
    uarch::Simulator sim(decoded);
    sim.setUseReferencePath(cfg.reference);
    sim.setDispatchMode(cfg.mode);
    workload::KernelHandle handle(sim, k.info);
    handle.boot();
    for (int i = 0; i < 200; ++i)
        handle.syscall(kernel::sysno::kRead, 3, 0, 4);
    double best = 0;
    double total = 0;
    do {
        sim.clearStats();
        const Clock::time_point t0 = Clock::now();
        for (int i = 0; i < 1000; ++i)
            handle.syscall(kernel::sysno::kRead, 3, 0, 4);
        const double dt =
            std::chrono::duration<double>(Clock::now() - t0).count();
        total += dt;
        best = std::max(
            best, static_cast<double>(sim.stats().instructions) / dt);
    } while (total < min_seconds);
    return best;
}

/** First line of a shell command's output ("" on failure). */
std::string
firstLineOf(const char* cmd)
{
    std::string line;
    if (std::FILE* p = ::popen(cmd, "r")) {
        char buf[256];
        if (std::fgets(buf, sizeof buf, p)) {
            line = buf;
            while (!line.empty() &&
                   (line.back() == '\n' || line.back() == '\r'))
                line.pop_back();
        }
        ::pclose(p);
    }
    return line;
}

/** "model name" from /proc/cpuinfo ("" when unavailable). */
std::string
cpuModel()
{
    std::string model;
    if (std::FILE* f = std::fopen("/proc/cpuinfo", "r")) {
        char buf[512];
        while (std::fgets(buf, sizeof buf, f)) {
            if (std::strncmp(buf, "model name", 10) == 0) {
                const char* colon = std::strchr(buf, ':');
                if (colon) {
                    model = colon + 1;
                    while (!model.empty() &&
                           (model.front() == ' ' ||
                            model.front() == '\t'))
                        model.erase(model.begin());
                    while (!model.empty() &&
                           (model.back() == '\n' ||
                            model.back() == '\r'))
                        model.pop_back();
                }
                break;
            }
        }
        std::fclose(f);
    }
    return model;
}

const char*
compilerId()
{
#if defined(__clang__)
    return "clang " __clang_version__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

int
writeInterpreterJson(const char* path)
{
    using Clock = std::chrono::steady_clock;
    using uarch::Simulator;
    const auto& k = sharedKernel();

    const Clock::time_point t0 = Clock::now();
    const uarch::DecodedModule decoded(k.module);
    const double decode_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();

    const auto kThreaded = Simulator::DispatchMode::kThreaded;
    const auto kSwitch = Simulator::DispatchMode::kSwitch;
    const double reference = syscallRate({.reference = true}, 2.0);
    const double hot =
        syscallRate({.fuse = true, .mode = kThreaded}, 2.0);
    const double hot_switch =
        syscallRate({.fuse = true, .mode = kSwitch}, 2.0);
    const double unfused =
        syscallRate({.fuse = false, .mode = kThreaded}, 2.0);
    const double unfused_switch =
        syscallRate({.fuse = false, .mode = kSwitch}, 2.0);

    // Per-family dynamic execution counts over a fixed syscall batch
    // (the dispatch-count side of the per-digram cost story; the rate
    // deltas above are the time side).
    Simulator fsim(k.module);
    workload::KernelHandle fhandle(fsim, k.info);
    fhandle.boot();
    fsim.clearStats();
    for (int i = 0; i < 2000; ++i)
        fhandle.syscall(kernel::sysno::kRead, 3, 0, 4);
    const uarch::RunStats& fstats = fsim.stats();
    const uarch::DecodeStats& ds = decoded.decodeStats();

    std::FILE* out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out,
                 "  \"benchmark\": \"read syscall, 32-driver kernel\",\n");
    std::fprintf(out,
                 "  \"methodology\": \"peak 1000-syscall window over "
                 ">=2s per configuration\",\n");
    std::fprintf(out, "  \"decoded_minstr_per_s\": %.3f,\n", hot / 1e6);
    std::fprintf(out, "  \"decoded_switch_minstr_per_s\": %.3f,\n",
                 hot_switch / 1e6);
    std::fprintf(out, "  \"decoded_unfused_minstr_per_s\": %.3f,\n",
                 unfused / 1e6);
    std::fprintf(out,
                 "  \"decoded_unfused_switch_minstr_per_s\": %.3f,\n",
                 unfused_switch / 1e6);
    std::fprintf(out, "  \"reference_minstr_per_s\": %.3f,\n",
                 reference / 1e6);
    std::fprintf(out, "  \"speedup\": %.3f,\n", hot / reference);
    std::fprintf(out, "  \"decode_ms\": %.3f,\n", decode_ms);
    std::fprintf(out, "  \"decoded_bytes\": %zu,\n",
                 decoded.decodedBytes());
    std::fprintf(out, "  \"decoded_insts\": %zu,\n",
                 decoded.code().size());
    std::fprintf(out, "  \"fused_static_pairs\": %llu,\n",
                 static_cast<unsigned long long>(ds.fused_pairs));
    std::fprintf(out, "  \"fused_families\": [\n");
    for (size_t f = 0; f < uarch::kNumFusedFamilies; ++f) {
        std::fprintf(
            out,
            "    {\"family\": \"%s\", \"static_sites\": %llu, "
            "\"dynamic_execs\": %llu}%s\n",
            uarch::fusedFamilyName(static_cast<uarch::FusedFamily>(f)),
            static_cast<unsigned long long>(ds.fused_sites[f]),
            static_cast<unsigned long long>(fstats.fused[f]),
            f + 1 < uarch::kNumFusedFamilies ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    // The top static digrams (the data fusion candidates come from).
    {
        struct Entry
        {
            uint64_t n;
            int a, b;
        };
        std::vector<Entry> top;
        for (int a = 0; a < static_cast<int>(uarch::kNumIrOpcodes); ++a)
            for (int b = 0; b < static_cast<int>(uarch::kNumIrOpcodes);
                 ++b)
                if (ds.digram[a][b] > 0)
                    top.push_back({ds.digram[a][b], a, b});
        std::sort(top.begin(), top.end(),
                  [](const Entry& x, const Entry& y) {
                      return x.n > y.n;
                  });
        if (top.size() > 8)
            top.resize(8);
        std::fprintf(out, "  \"top_static_digrams\": [\n");
        for (size_t i = 0; i < top.size(); ++i) {
            std::fprintf(
                out,
                "    {\"pair\": \"%s+%s\", \"sites\": %llu}%s\n",
                ir::opcodeName(static_cast<ir::Opcode>(top[i].a)),
                ir::opcodeName(static_cast<ir::Opcode>(top[i].b)),
                static_cast<unsigned long long>(top[i].n),
                i + 1 < top.size() ? "," : "");
        }
        std::fprintf(out, "  ],\n");
    }
    // Per-opcode static histogram (same decode the digrams came
    // from), so candidate selection has both halves in one artifact.
    {
        std::fprintf(out, "  \"opcode_histogram\": [\n");
        bool first = true;
        for (size_t o = 0; o < uarch::kNumIrOpcodes; ++o) {
            if (ds.op_count[o] == 0)
                continue;
            std::fprintf(
                out, "%s    {\"op\": \"%s\", \"static_sites\": %llu}",
                first ? "" : ",\n",
                ir::opcodeName(static_cast<ir::Opcode>(o)),
                static_cast<unsigned long long>(ds.op_count[o]));
            first = false;
        }
        std::fprintf(out, "\n  ],\n");
    }
    // Measured dispatch cost: how many dispatches the fixed syscall
    // batch performed (fused pairs retire two instructions per
    // dispatch) and the derived per-dispatch cost in each
    // configuration — the number a future fusion candidate's expected
    // saving is priced against.
    {
        uint64_t fused_execs = 0;
        for (uint64_t n : fstats.fused)
            fused_execs += n;
        const uint64_t insts = fstats.instructions;
        const uint64_t dispatches = insts - fused_execs;
        const double per_disp =
            static_cast<double>(insts) / dispatches;
        std::fprintf(out, "  \"dispatch_cost\": {\n");
        std::fprintf(out, "    \"instructions\": %llu,\n",
                     static_cast<unsigned long long>(insts));
        std::fprintf(out, "    \"dispatches\": %llu,\n",
                     static_cast<unsigned long long>(dispatches));
        std::fprintf(out, "    \"fused_execs\": %llu,\n",
                     static_cast<unsigned long long>(fused_execs));
        std::fprintf(out,
                     "    \"threaded_ns_per_dispatch\": %.3f,\n",
                     1e9 / hot * per_disp);
        std::fprintf(out, "    \"switch_ns_per_dispatch\": %.3f,\n",
                     1e9 / hot_switch * per_disp);
        std::fprintf(
            out,
            "    \"unfused_threaded_ns_per_dispatch\": %.3f,\n",
            1e9 / unfused);
        std::fprintf(out,
                     "    \"unfused_switch_ns_per_dispatch\": %.3f\n",
                     1e9 / unfused_switch);
        std::fprintf(out, "  },\n");
    }
    // Provenance: make the recorded number attributable.
    {
        char stamp[64] = "";
        const std::time_t now = std::time(nullptr);
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                      std::gmtime(&now));
        const std::string sha =
            firstLineOf("git rev-parse --short HEAD 2>/dev/null");
        std::fprintf(out, "  \"provenance\": {\n");
        std::fprintf(out, "    \"git_sha\": \"%s\",\n", sha.c_str());
        std::fprintf(out, "    \"compiler\": \"%s\",\n", compilerId());
        std::fprintf(out, "    \"cpu\": \"%s\",\n",
                     cpuModel().c_str());
        std::fprintf(out, "    \"dispatch_mode\": \"%s\",\n",
                     Simulator::threadedDispatchAvailable() ? "threaded"
                                                            : "switch");
        std::fprintf(out, "    \"timestamp_utc\": \"%s\"\n", stamp);
        std::fprintf(out, "  }\n");
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("interpreter: decoded %.2f Minstr/s (switch %.2f, "
                "unfused %.2f), reference %.2f Minstr/s (%.2fx) -> "
                "%s\n",
                hot / 1e6, hot_switch / 1e6, unfused / 1e6,
                reference / 1e6, hot / reference, path);
    return 0;
}

} // namespace
} // namespace pibe

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--interpreter-json") == 0 &&
            i + 1 < argc)
            return pibe::writeInterpreterJson(argv[i + 1]);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
