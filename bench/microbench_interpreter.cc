/**
 * @file
 * Host-side google-benchmark microbenchmarks for the simulator itself
 * (instructions per wall-clock second, pipeline pass throughput).
 * These measure the reproduction's own engine, not the paper's
 * results — the table/figure binaries alongside this one use
 * simulated cycles, which wall-clock timing cannot express.
 */
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "opt/cleanup.h"
#include "opt/icp.h"
#include "opt/inliner.h"
#include "uarch/simulator.h"

namespace pibe {
namespace {

const kernel::KernelImage&
sharedKernel()
{
    static kernel::KernelImage image = [] {
        kernel::KernelConfig cfg;
        cfg.num_drivers = 32;
        return kernel::buildKernel(cfg);
    }();
    return image;
}

const profile::EdgeProfile&
sharedProfile()
{
    static profile::EdgeProfile p = [] {
        const auto& k = sharedKernel();
        auto suite = workload::makeLmbenchSuite();
        return core::collectProfile(k.module, k.info, suite, 30);
    }();
    return p;
}

void
BM_SimulatorSyscallThroughput(benchmark::State& state)
{
    const auto& k = sharedKernel();
    uarch::Simulator sim(k.module);
    workload::KernelHandle handle(sim, k.info);
    handle.boot();
    uint64_t instructions = 0;
    for (auto _ : state) {
        sim.clearStats();
        handle.syscall(kernel::sysno::kRead, 3, 0, 4);
        instructions += sim.stats().instructions;
    }
    state.counters["sim_instructions_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorSyscallThroughput);

void
BM_KernelBuild(benchmark::State& state)
{
    kernel::KernelConfig cfg;
    cfg.num_drivers = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        auto image = kernel::buildKernel(cfg);
        benchmark::DoNotOptimize(image.module.numFunctions());
    }
}
BENCHMARK(BM_KernelBuild)->Arg(8)->Arg(32)->Arg(160);

void
BM_PibeInliner(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        ir::Module m = sharedKernel().module;  // copy
        profile::EdgeProfile p = sharedProfile();
        state.ResumeTiming();
        opt::PibeInlinerConfig cfg;
        cfg.budget =
            static_cast<double>(state.range(0)) / 1000.0;
        auto audit = opt::runPibeInliner(m, p, cfg);
        benchmark::DoNotOptimize(audit.inlined_sites);
    }
}
BENCHMARK(BM_PibeInliner)->Arg(990)->Arg(999)->Arg(1000);

void
BM_Icp(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        ir::Module m = sharedKernel().module;
        profile::EdgeProfile p = sharedProfile();
        state.ResumeTiming();
        auto audit = opt::runIcp(m, p, {});
        benchmark::DoNotOptimize(audit.promoted_sites);
    }
}
BENCHMARK(BM_Icp);

void
BM_CleanupModule(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        ir::Module m = sharedKernel().module;
        state.ResumeTiming();
        opt::cleanupModule(m);
        benchmark::DoNotOptimize(m.numFunctions());
    }
}
BENCHMARK(BM_CleanupModule);

} // namespace
} // namespace pibe

BENCHMARK_MAIN();
