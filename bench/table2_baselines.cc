/**
 * @file
 * Table 2: the two baselines — the LTO kernel (how Linux actually
 * ships) and the PIBE baseline (PIBE's PGO algorithms with no defenses
 * enabled). The paper reports that PIBE's optimizations alone speed up
 * the kernel by a geometric mean of -6.6% on LMBench.
 */
#include "bench/bench_util.h"

namespace pibe {
namespace {

/** Paper Table 2 reference overheads (PIBE baseline vs LTO). */
const std::map<std::string, double> kPaperOverheads = {
    {"null", 0.034},        {"read", -0.067},      {"write", -0.045},
    {"open", -0.177},       {"stat", -0.164},      {"fstat", 0.027},
    {"af_unix", -0.095},    {"fork/exit", -0.052}, {"fork/exec", -0.045},
    {"fork/shell", -0.040}, {"pipe", -0.023},      {"select_file", -0.096},
    {"select_tcp", -0.134}, {"tcp_conn", -0.075},  {"udp", -0.103},
    {"tcp", -0.105},        {"mmap", -0.043},      {"page_fault", -0.035},
    {"sig_install", 0.001}, {"sig_dispatch", -0.056},
};

} // namespace
} // namespace pibe

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k);

    ir::Module lto =
        core::buildImage(k.module, profile, core::OptConfig::none(),
                         harden::DefenseConfig::none());
    // The PIBE baseline: PGO tuned for best LMBench performance, no
    // defenses.
    ir::Module pibe_base = core::buildImage(
        k.module, profile, core::OptConfig::icpAndInline(0.999),
        harden::DefenseConfig::none());

    auto lat_lto = bench::lmbenchLatencies(lto, k.info);
    auto lat_pibe = bench::lmbenchLatencies(pibe_base, k.info);
    auto ovr = bench::overheadsVs(lat_lto, lat_pibe);

    Table t({"Test", "LTO baseline (us)", "PIBE baseline (us)",
             "overhead", "paper"});
    auto suite = workload::makeLmbenchSuite();
    for (const auto& wl : suite) {
        const std::string& name = wl->name();
        t.addRow({name, fixedStr(lat_lto.at(name), 3),
                  fixedStr(lat_pibe.at(name), 3),
                  percent(ovr.per_test.at(name)),
                  percent(kPaperOverheads.at(name))});
    }
    t.addSeparator();
    t.addRow({"Geometric Mean", "-", "-", percent(ovr.geomean),
              "-6.6%"});
    bench::printTable(
        "Table 2: LTO baseline vs PIBE (PGO, no defenses) baseline",
        "Negative overhead = speedup from PIBE's ICP+inlining alone.",
        t);
    return 0;
}
