/**
 * @file
 * Ablation (§6.4): eIBRS vs retpolines.
 *
 * Enhanced IBRS replaces retpolines in recent hardware by partitioning
 * branch predictions across privilege levels, at a small per-branch
 * tax. But "the hardware mitigation has limitations and does not
 * prevent attacks that train on kernel execution" — same-mode
 * mistraining of aliasing kernel branches still lands. Retpolines (and
 * PIBE-optimized retpolines) block both training modes.
 */
#include "bench/bench_util.h"

#include "uarch/simulator.h"
#include "uarch/speculation.h"

namespace pibe {
namespace {

uint64_t
v2Hits(const ir::Module& image, const kernel::KernelInfo& info,
       bool eibrs, bool same_mode)
{
    uarch::CostParams params;
    params.eibrs = eibrs;
    uarch::Simulator sim(image, params);
    sim.setTimingEnabled(false);
    ir::FuncId gadget = image.findFunction("drv0_h0");
    uarch::TransientAttacker attacker(uarch::AttackKind::kSpectreV2,
                                      sim.layout().funcBase(gadget));
    attacker.setEibrs(eibrs, same_mode);
    workload::KernelHandle handle(sim, info);
    handle.boot();
    auto wl = workload::makeLmbenchTest("read");
    wl->setup(handle);
    sim.setObserver(&attacker);
    for (uint64_t i = 0; i < 200; ++i)
        wl->iteration(handle, i);
    return attacker.forwardHits();
}

double
lmbenchGeomean(const kernel::KernelImage& k,
               const std::map<std::string, double>& base,
               const ir::Module& image, bool eibrs)
{
    core::MeasureConfig cfg = bench::measureConfig();
    cfg.params.eibrs = eibrs;
    std::vector<double> overheads;
    for (auto& wl : workload::makeLmbenchSuite()) {
        double lat =
            core::measureWorkload(image, k.info, *wl, cfg).latency_us;
        overheads.push_back(overhead(lat, base.at(wl->name())));
    }
    return geomeanOverhead(overheads);
}

} // namespace
} // namespace pibe

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k, 40);

    ir::Module plain =
        core::buildImage(k.module, profile, core::OptConfig::none(),
                         harden::DefenseConfig::none());
    ir::Module retp =
        core::buildImage(k.module, profile, core::OptConfig::none(),
                         harden::DefenseConfig::retpolinesOnly());
    ir::Module retp_opt = core::buildImage(
        k.module, profile, core::OptConfig::icpOnly(0.99999),
        harden::DefenseConfig::retpolinesOnly());
    auto base = bench::lmbenchLatencies(plain, k.info);

    auto verdict = [](uint64_t hits) {
        return hits == 0 ? std::string("blocked")
                         : std::to_string(hits) + " gadget hits";
    };
    Table t({"mitigation", "cross-privilege training",
             "same-mode training", "LMBench overhead"});
    t.addRow({"none", verdict(v2Hits(plain, k.info, false, false)),
              verdict(v2Hits(plain, k.info, false, true)), "0.0%"});
    t.addRow({"eIBRS",
              verdict(v2Hits(plain, k.info, true, false)),
              verdict(v2Hits(plain, k.info, true, true)),
              percent(lmbenchGeomean(k, base, plain, true))});
    t.addRow({"retpolines",
              verdict(v2Hits(retp, k.info, false, false)),
              verdict(v2Hits(retp, k.info, false, true)),
              percent(lmbenchGeomean(k, base, retp, false))});
    t.addRow({"retpolines + PIBE icp",
              verdict(v2Hits(retp_opt, k.info, false, false)),
              verdict(v2Hits(retp_opt, k.info, false, true)),
              percent(lmbenchGeomean(k, base, retp_opt, false))});

    bench::printTable(
        "Ablation: eIBRS vs retpolines (§6.4)",
        "Spectre V2 against the read() path. eIBRS stops only "
        "cross-privilege training; retpolines stop both, and with "
        "PIBE's promotion their cost falls below the hardware tax. "
        "(Residual hits under retpolines come from the assembly "
        "dispatch switches, as in Table 11.)",
        t);
    return 0;
}
