/**
 * @file
 * Table 6: LMBench geometric-mean overhead per individual defense,
 * unoptimized (LTO) vs PIBE-optimized. In the paper every defense
 * drops by more than an order of magnitude (e.g. retpolines 20.2% ->
 * 1.3%, all defenses 149.1% -> 10.6%).
 */
#include "bench/bench_util.h"

int
main(int argc, char** argv)
{
    using namespace pibe;
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);

    struct Row
    {
        const char* name;
        harden::DefenseConfig defense;
        core::OptConfig pibe_opt;
        const char* paper_lto;
        const char* paper_pibe;
    };
    // Per the paper, the retpolines-only configuration uses ICP alone;
    // the others use the full optimal configuration.
    const std::vector<Row> rows = {
        {"None", harden::DefenseConfig::none(),
         core::OptConfig::icpAndInline(0.999), "0.0%", "-6.6%"},
        {"Retpolines", harden::DefenseConfig::retpolinesOnly(),
         core::OptConfig::icpOnly(0.99999), "20.2%", "1.3%"},
        {"Return retpolines", harden::DefenseConfig::retRetpolinesOnly(),
         core::OptConfig::icpAndInline(0.999999, true), "63.4%", "3.7%"},
        {"LVI-CFI", harden::DefenseConfig::lviOnly(),
         core::OptConfig::icpAndInline(0.999999, true), "61.9%", "1.8%"},
        {"All", harden::DefenseConfig::all(),
         core::OptConfig::icpAndInline(0.999999, true), "149.1%",
         "10.6%"},
    };

    core::ExperimentPlan plan;
    plan.measure = bench::measureConfig();
    plan.addImage("lto", core::OptConfig::none(),
                  harden::DefenseConfig::none());
    plan.measureLmbenchOn("lto");
    for (const auto& row : rows) {
        plan.addImage(std::string("unopt/") + row.name,
                      core::OptConfig::none(), row.defense);
        plan.measureLmbenchOn(std::string("unopt/") + row.name);
        plan.addImage(std::string("pibe/") + row.name, row.pibe_opt,
                      row.defense);
        plan.measureLmbenchOn(std::string("pibe/") + row.name);
    }

    core::ExperimentResults results =
        core::runExperiments(plan, args.engine);
    auto base = results.latencies("lto");

    Table t({"Defense", "LTO", "PIBE", "paper LTO", "paper PIBE"});
    for (const auto& row : rows) {
        auto o_unopt = bench::overheadsVs(
            base, results.latencies(std::string("unopt/") + row.name));
        auto o_opt = bench::overheadsVs(
            base, results.latencies(std::string("pibe/") + row.name));
        t.addRow({row.name, percent(o_unopt.geomean),
                  percent(o_opt.geomean), row.paper_lto,
                  row.paper_pibe});
    }
    bench::printTable(
        "Table 6: LMBench geometric mean overhead per defense",
        "Each defense measured unoptimized (LTO) and with PIBE's "
        "optimal optimization configuration.",
        t);

    // Companion surface accounting (beyond-paper): per defense, the
    // indirect-branch residue of the PIBE configuration when total
    // promotion elides fully-covered sites.
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k);
    Table s({"Defense", "elided icalls", "capped icalls",
             "total-safe sites"});
    for (const auto& row : rows) {
        core::OptConfig total = row.pibe_opt;
        total.icp_total_promotion = true;
        total.icp_total_promotion_max_targets = 30;
        core::BuildReport rep;
        core::buildImage(k.module, profile, total, row.defense, &rep);
        s.addRow({row.name,
                  std::to_string(rep.coverage.elided_icalls),
                  std::to_string(rep.coverage.capped_residual_icalls),
                  std::to_string(rep.icp.total_safe_sites)});
    }
    bench::printTable(
        "Table 6b: ICP residual-surface accounting per defense",
        "Elided = fallback icalls dropped by total promotion (sites "
        "whose complete feasible set is fully covered by guarded "
        "direct calls); see `pibe surface` for the full report.",
        s);
    bench::finishBench(args, "table6_per_defense", results);
    return 0;
}
