/**
 * @file
 * Table 6: LMBench geometric-mean overhead per individual defense,
 * unoptimized (LTO) vs PIBE-optimized. In the paper every defense
 * drops by more than an order of magnitude (e.g. retpolines 20.2% ->
 * 1.3%, all defenses 149.1% -> 10.6%).
 */
#include "bench/bench_util.h"

int
main(int argc, char** argv)
{
    using namespace pibe;
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);

    struct Row
    {
        const char* name;
        harden::DefenseConfig defense;
        core::OptConfig pibe_opt;
        const char* paper_lto;
        const char* paper_pibe;
    };
    // Per the paper, the retpolines-only configuration uses ICP alone;
    // the others use the full optimal configuration.
    const std::vector<Row> rows = {
        {"None", harden::DefenseConfig::none(),
         core::OptConfig::icpAndInline(0.999), "0.0%", "-6.6%"},
        {"Retpolines", harden::DefenseConfig::retpolinesOnly(),
         core::OptConfig::icpOnly(0.99999), "20.2%", "1.3%"},
        {"Return retpolines", harden::DefenseConfig::retRetpolinesOnly(),
         core::OptConfig::icpAndInline(0.999999, true), "63.4%", "3.7%"},
        {"LVI-CFI", harden::DefenseConfig::lviOnly(),
         core::OptConfig::icpAndInline(0.999999, true), "61.9%", "1.8%"},
        {"All", harden::DefenseConfig::all(),
         core::OptConfig::icpAndInline(0.999999, true), "149.1%",
         "10.6%"},
    };

    core::ExperimentPlan plan;
    plan.measure = bench::measureConfig();
    plan.addImage("lto", core::OptConfig::none(),
                  harden::DefenseConfig::none());
    plan.measureLmbenchOn("lto");
    for (const auto& row : rows) {
        plan.addImage(std::string("unopt/") + row.name,
                      core::OptConfig::none(), row.defense);
        plan.measureLmbenchOn(std::string("unopt/") + row.name);
        plan.addImage(std::string("pibe/") + row.name, row.pibe_opt,
                      row.defense);
        plan.measureLmbenchOn(std::string("pibe/") + row.name);
    }

    core::ExperimentResults results =
        core::runExperiments(plan, args.engine);
    auto base = results.latencies("lto");

    Table t({"Defense", "LTO", "PIBE", "paper LTO", "paper PIBE"});
    for (const auto& row : rows) {
        auto o_unopt = bench::overheadsVs(
            base, results.latencies(std::string("unopt/") + row.name));
        auto o_opt = bench::overheadsVs(
            base, results.latencies(std::string("pibe/") + row.name));
        t.addRow({row.name, percent(o_unopt.geomean),
                  percent(o_opt.geomean), row.paper_lto,
                  row.paper_pibe});
    }
    bench::printTable(
        "Table 6: LMBench geometric mean overhead per defense",
        "Each defense measured unoptimized (LTO) and with PIBE's "
        "optimal optimization configuration.",
        t);
    bench::finishBench(args, "table6_per_defense", results);
    return 0;
}
