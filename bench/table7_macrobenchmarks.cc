/**
 * @file
 * Table 7: macrobenchmark throughput (Nginx, Apache, DBench) under
 * each defense configuration, unoptimized vs PIBE-optimized with an
 * LMBench training workload (§8.5). Throughput deltas are relative to
 * the LTO baseline; the retpolines-only configuration uses ICP alone.
 */
#include "bench/bench_util.h"

namespace pibe {
namespace {

double
throughput(const ir::Module& image, const kernel::KernelInfo& info,
           std::unique_ptr<workload::Workload> wl)
{
    core::MeasureConfig cfg = bench::measureConfig();
    cfg.warmup_iters = 100;
    cfg.measure_iters = 300;
    return core::measureWorkload(image, info, *wl, cfg).ops_per_sec;
}

struct PaperCell
{
    double no_opt, pibe;
};

} // namespace
} // namespace pibe

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k);

    struct DefRow
    {
        const char* name;
        harden::DefenseConfig defense;
        core::OptConfig opt;
    };
    const std::vector<DefRow> defenses = {
        {"w/retpolines", harden::DefenseConfig::retpolinesOnly(),
         core::OptConfig::icpOnly(0.99999)},
        {"w/ret-retpolines", harden::DefenseConfig::retRetpolinesOnly(),
         core::OptConfig::icpAndInline(0.999999, true)},
        {"w/LVI-CFI", harden::DefenseConfig::lviOnly(),
         core::OptConfig::icpAndInline(0.999999, true)},
        {"w/all-defenses", harden::DefenseConfig::all(),
         core::OptConfig::icpAndInline(0.999999, true)},
    };

    struct BenchDef
    {
        const char* name;
        std::unique_ptr<workload::Workload> (*make)();
        // Paper reference deltas per defense row (%, no-opt / PIBE).
        PaperCell paper[4];
    };
    const BenchDef benches[] = {
        {"Nginx", workload::makeNginxWorkload,
         {{-6.98, 1.37}, {-33.32, 6.05}, {-27.45, 9.21},
          {-51.71, -5.95}}},
        {"Apache", workload::makeApacheWorkload,
         {{-3.8, 0.76}, {-22.87, -0.08}, {-23.41, 1.88},
          {-39.26, -7.93}}},
        {"DBench", workload::makeDbenchWorkload,
         {{-4.25, -1.78}, {-27.9, -0.84}, {-20.4, 1.61},
          {-45.61, -6.68}}},
    };

    ir::Module lto =
        core::buildImage(k.module, profile, core::OptConfig::none(),
                         harden::DefenseConfig::none());

    Table t({"Benchmark", "Configuration", "no-opt", "PIBE",
             "paper no-opt", "paper PIBE"});
    for (const auto& b : benches) {
        double vanilla = throughput(lto, k.info, b.make());
        for (size_t d = 0; d < defenses.size(); ++d) {
            ir::Module unopt =
                core::buildImage(k.module, profile,
                                 core::OptConfig::none(),
                                 defenses[d].defense);
            ir::Module opt = core::buildImage(
                k.module, profile, defenses[d].opt,
                defenses[d].defense);
            double tu = throughput(unopt, k.info, b.make());
            double to = throughput(opt, k.info, b.make());
            t.addRow({d == 0 ? b.name : "", defenses[d].name,
                      percent(tu / vanilla - 1.0),
                      percent(to / vanilla - 1.0),
                      percent(b.paper[d].no_opt / 100.0),
                      percent(b.paper[d].pibe / 100.0)});
        }
        t.addSeparator();
    }
    bench::printTable(
        "Table 7: macrobenchmark throughput deltas vs LTO baseline",
        "Positive = faster than the undefended baseline. PIBE images "
        "are optimized with the LMBench training workload.",
        t);
    return 0;
}
