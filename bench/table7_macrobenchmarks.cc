/**
 * @file
 * Table 7: macrobenchmark throughput (Nginx, Apache, DBench) under
 * each defense configuration, unoptimized vs PIBE-optimized with an
 * LMBench training workload (§8.5). Throughput deltas are relative to
 * the LTO baseline; the retpolines-only configuration uses ICP alone.
 */
#include "bench/bench_util.h"

namespace pibe {
namespace {

struct PaperCell
{
    double no_opt, pibe;
};

} // namespace
} // namespace pibe

int
main(int argc, char** argv)
{
    using namespace pibe;
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);

    struct DefRow
    {
        const char* name;
        harden::DefenseConfig defense;
        core::OptConfig opt;
    };
    const std::vector<DefRow> defenses = {
        {"w/retpolines", harden::DefenseConfig::retpolinesOnly(),
         core::OptConfig::icpOnly(0.99999)},
        {"w/ret-retpolines", harden::DefenseConfig::retRetpolinesOnly(),
         core::OptConfig::icpAndInline(0.999999, true)},
        {"w/LVI-CFI", harden::DefenseConfig::lviOnly(),
         core::OptConfig::icpAndInline(0.999999, true)},
        {"w/all-defenses", harden::DefenseConfig::all(),
         core::OptConfig::icpAndInline(0.999999, true)},
    };

    struct BenchDef
    {
        const char* name;
        const char* workload;
        // Paper reference deltas per defense row (%, no-opt / PIBE).
        PaperCell paper[4];
    };
    const BenchDef benches[] = {
        {"Nginx", "nginx",
         {{-6.98, 1.37}, {-33.32, 6.05}, {-27.45, 9.21},
          {-51.71, -5.95}}},
        {"Apache", "apache",
         {{-3.8, 0.76}, {-22.87, -0.08}, {-23.41, 1.88},
          {-39.26, -7.93}}},
        {"DBench", "dbench",
         {{-4.25, -1.78}, {-27.9, -0.84}, {-20.4, 1.61},
          {-45.61, -6.68}}},
    };

    core::ExperimentPlan plan;
    plan.measure = bench::measureConfig();
    plan.measure.warmup_iters = 100;
    plan.measure.measure_iters = 300;
    plan.addImage("lto", core::OptConfig::none(),
                  harden::DefenseConfig::none());
    for (const auto& def : defenses) {
        plan.addImage(std::string("unopt/") + def.name,
                      core::OptConfig::none(), def.defense);
        plan.addImage(std::string("pibe/") + def.name, def.opt,
                      def.defense);
    }
    for (const auto& b : benches) {
        plan.measureOn("lto", b.workload);
        for (const auto& def : defenses) {
            plan.measureOn(std::string("unopt/") + def.name,
                           b.workload);
            plan.measureOn(std::string("pibe/") + def.name,
                           b.workload);
        }
    }

    core::ExperimentResults results =
        core::runExperiments(plan, args.engine);

    Table t({"Benchmark", "Configuration", "no-opt", "PIBE",
             "paper no-opt", "paper PIBE"});
    for (const auto& b : benches) {
        double vanilla = results.at("lto", b.workload).ops_per_sec;
        for (size_t d = 0; d < defenses.size(); ++d) {
            double tu =
                results
                    .at(std::string("unopt/") + defenses[d].name,
                        b.workload)
                    .ops_per_sec;
            double to =
                results
                    .at(std::string("pibe/") + defenses[d].name,
                        b.workload)
                    .ops_per_sec;
            t.addRow({d == 0 ? b.name : "", defenses[d].name,
                      percent(tu / vanilla - 1.0),
                      percent(to / vanilla - 1.0),
                      percent(b.paper[d].no_opt / 100.0),
                      percent(b.paper[d].pibe / 100.0)});
        }
        t.addSeparator();
    }
    bench::printTable(
        "Table 7: macrobenchmark throughput deltas vs LTO baseline",
        "Positive = faster than the undefended baseline. PIBE images "
        "are optimized with the LMBench training workload.",
        t);
    bench::finishBench(args, "table7_macrobenchmarks", results);
    return 0;
}
