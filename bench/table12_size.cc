/**
 * @file
 * Table 12: kernel image growth due to PIBE's algorithms, per budget
 * and defense configuration. "abs size" is growth over the plain LTO
 * image; "img size" is growth over the same-defense unoptimized image
 * (isolating the optimization cost from the hardening cost); "mem
 * size" is resident text in 2 MiB huge pages, which is why it moves in
 * coarse quantized steps like the paper's 0% / 12.5% / 25%. The
 * paper's slab/dyn columns track runtime allocator usage; our analog
 * is the peak simulated stack, which inlining's frame merging affects.
 */
#include "bench/bench_util.h"

namespace pibe {
namespace {

uint64_t
peakStack(const ir::Module& image, const kernel::KernelInfo& info)
{
    auto wl = workload::makeLmbenchTest("fork/shell");
    core::MeasureConfig cfg;
    cfg.warmup_iters = 20;
    cfg.measure_iters = 60;
    return core::measureWorkload(image, info, *wl, cfg)
        .stats.peak_frame_slots;
}

} // namespace
} // namespace pibe

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k);

    struct Row
    {
        const char* config;
        harden::DefenseConfig defense;
        const char* budget_label;
        core::OptConfig opt;
    };
    const std::vector<Row> rows = {
        {"w/all-defenses", harden::DefenseConfig::all(), "99%",
         core::OptConfig::icpAndInline(0.99)},
        {"w/all-defenses", harden::DefenseConfig::all(), "99.9%",
         core::OptConfig::icpAndInline(0.999)},
        {"w/all-defenses", harden::DefenseConfig::all(), "99.9999%",
         core::OptConfig::icpAndInline(0.999999)},
        {"w/retpolines", harden::DefenseConfig::retpolinesOnly(),
         "99.999%", core::OptConfig::icpOnly(0.99999)},
        {"w/LVI-CFI", harden::DefenseConfig::lviOnly(), "99%",
         core::OptConfig::icpAndInline(0.99)},
        {"w/LVI-CFI", harden::DefenseConfig::lviOnly(), "99.9999%",
         core::OptConfig::icpAndInline(0.999999)},
        {"w/ret-retpolines", harden::DefenseConfig::retRetpolinesOnly(),
         "99%", core::OptConfig::icpAndInline(0.99)},
        {"w/ret-retpolines", harden::DefenseConfig::retRetpolinesOnly(),
         "99.9999%", core::OptConfig::icpAndInline(0.999999)},
    };

    core::BuildReport base_rep;
    ir::Module lto =
        core::buildImage(k.module, profile, core::OptConfig::none(),
                         harden::DefenseConfig::none(), &base_rep);
    const double lto_size = static_cast<double>(base_rep.image_size);
    const uint64_t lto_stack = peakStack(lto, k.info);

    Table t({"config", "budget", "abs size", "img size", "mem size",
             "peak stack"});
    for (const auto& row : rows) {
        core::BuildReport unopt_rep, opt_rep;
        ir::Module unopt =
            core::buildImage(k.module, profile, core::OptConfig::none(),
                             row.defense, &unopt_rep);
        ir::Module opt = core::buildImage(k.module, profile, row.opt,
                                          row.defense, &opt_rep);
        (void)unopt;
        const double unopt_size =
            static_cast<double>(unopt_rep.image_size);
        const double opt_size = static_cast<double>(opt_rep.image_size);
        const double mem_unopt = static_cast<double>(
            analysis::CodeLayout(unopt).residentTextSize());
        const double mem_opt = static_cast<double>(
            analysis::CodeLayout(opt).residentTextSize());
        const uint64_t stack_opt = peakStack(opt, k.info);
        t.addRow({row.config, row.budget_label,
                  percent(opt_size / lto_size - 1.0),
                  percent(opt_size / unopt_size - 1.0),
                  percent(mem_opt / mem_unopt - 1.0),
                  percent(static_cast<double>(stack_opt) /
                              static_cast<double>(lto_stack) -
                          1.0)});
    }
    t.addSeparator();
    t.addRow({"paper all-def", "99 -> 99.9999",
              "8.1% -> 36.8%", "4.8% -> 32.7%", "0% -> 25%",
              "(slab 0.1-0.3%, dyn ~0-1%)"});

    bench::printTable(
        "Table 12: image size and memory growth by budget",
        "abs size vs the LTO baseline; img size vs the unoptimized "
        "image with the same defenses; mem size = 2 MiB-page resident "
        "text. peak stack is our analog of the paper's runtime memory "
        "columns (see DESIGN.md).",
        t);
    return 0;
}
