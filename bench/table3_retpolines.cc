/**
 * @file
 * Table 3: retpoline overhead vs the LTO baseline, comparing static
 * PIBE indirect-call promotion against JumpSwitches' runtime patching
 * (§8.2). All configurations harden remaining indirect calls with
 * retpolines.
 */
#include "bench/bench_util.h"

namespace pibe {
namespace {

struct PaperRow
{
    double no_opt, jumpswitches, icp99, icp99999;
};

/** Paper Table 3 reference overheads (%) per test. */
const std::map<std::string, PaperRow> kPaper = {
    {"null", {3.8, 7.9, 10.3, 9.5}},
    {"read", {12.8, 0.1, 4.8, 1.1}},
    {"write", {14.7, -1.5, 5.7, 0.8}},
    {"open", {12.3, 8.6, -0.5, 0.7}},
    {"stat", {11.9, 8.4, 2.8, 0.2}},
    {"fstat", {5.4, 9.2, 8.1, 1.0}},
    {"select_tcp", {146.5, -10.5, 4.6, 5.8}},
    {"udp", {18.7, 7.4, -0.2, 0.4}},
    {"tcp", {17.5, 13.3, 0.3, 0.6}},
    {"tcp_conn", {28.5, 13.3, 12.5, 1.8}},
    {"af_unix", {10.6, -0.9, -2.0, -5.6}},
    {"pipe", {4.3, 7.1, 1.7, 0.4}},
};

} // namespace
} // namespace pibe

int
main(int argc, char** argv)
{
    using namespace pibe;
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);

    struct Spec
    {
        const char* name;
        core::OptConfig opt;
        harden::DefenseConfig defense;
    };
    const std::vector<Spec> specs = {
        {"lto", core::OptConfig::none(),
         harden::DefenseConfig::none()},
        {"LTO w/retpolines", core::OptConfig::none(),
         harden::DefenseConfig::retpolinesOnly()},
        {"JumpSwitches", core::OptConfig::none(),
         harden::DefenseConfig::jumpSwitches()},
        {"+icp (99%)", core::OptConfig::icpOnly(0.99),
         harden::DefenseConfig::retpolinesOnly()},
        {"+icp (99.999%)", core::OptConfig::icpOnly(0.99999),
         harden::DefenseConfig::retpolinesOnly()},
    };

    const auto tests = workload::lmbenchRetpolineSubset();
    core::ExperimentPlan plan;
    plan.measure = bench::measureConfig();
    for (const auto& spec : specs) {
        plan.addImage(spec.name, spec.opt, spec.defense);
        for (const auto& name : tests)
            plan.measureOn(spec.name, name);
    }

    core::ExperimentResults results =
        core::runExperiments(plan, args.engine);

    auto base = results.latencies("lto");
    struct Column
    {
        const char* name;
        std::map<std::string, double> lat;
    };
    std::vector<Column> cols;
    for (size_t s = 1; s < specs.size(); ++s)
        cols.push_back({specs[s].name, results.latencies(specs[s].name)});

    Table t({"Test", "LTO w/retpolines", "JumpSwitches", "+icp (99%)",
             "+icp (99.999%)", "paper (no-opt/JS/99/99.999)"});
    std::vector<std::vector<double>> overheads(cols.size());
    for (const auto& name : tests) {
        std::vector<std::string> row{name};
        for (size_t c = 0; c < cols.size(); ++c) {
            double o = overhead(cols[c].lat.at(name), base.at(name));
            overheads[c].push_back(o);
            row.push_back(percent(o));
        }
        const PaperRow& p = kPaper.at(name);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.1f / %.1f / %.1f / %.1f",
                      p.no_opt, p.jumpswitches, p.icp99, p.icp99999);
        row.push_back(buf);
        t.addRow(row);
    }
    t.addSeparator();
    std::vector<std::string> gm{"Geometric Mean"};
    for (auto& o : overheads)
        gm.push_back(percent(geomeanOverhead(o)));
    gm.push_back("20.2 / 5.0 / 3.9 / 1.3");
    t.addRow(gm);

    bench::printTable(
        "Table 3: retpoline overhead vs LTO baseline",
        "Static ICP (PIBE) vs JumpSwitches runtime patching; all "
        "remaining indirect calls hardened with retpolines.",
        t);
    bench::finishBench(args, "table3_retpolines", results);
    return 0;
}
