/**
 * @file
 * Shared machinery for the benchmark harness.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it builds the synthetic kernel, collects the LMBench profile
 * (phase 1), derives the images its experiment needs (phase 2), runs
 * the measurements, and prints rows in the paper's layout next to the
 * paper's published numbers. Absolute values differ (the substrate is
 * a simulator, not an i7-8700K running Linux 5.1); the *shape* — who
 * wins, by roughly what factor, where crossovers fall — is the
 * reproduction target (see EXPERIMENTS.md).
 */
#ifndef PIBE_BENCH_BENCH_UTIL_H_
#define PIBE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "pibe/engine.h"
#include "pibe/experiment.h"
#include "pibe/pipeline.h"
#include "support/stats.h"
#include "support/table.h"
#include "workload/workload.h"

namespace pibe::bench {

/** The evaluation kernel: full-size, fixed seed. */
inline kernel::KernelImage
buildEvalKernel()
{
    return kernel::buildKernel(kernel::KernelConfig{});
}

/** Standard measurement knobs used across all tables. */
inline core::MeasureConfig
measureConfig()
{
    core::MeasureConfig cfg;
    cfg.warmup_iters = 150;
    cfg.measure_iters = 400;
    return cfg;
}

/**
 * Phase 1: the LMBench profiling workload. Delegates to the engine's
 * canonical skewed profile (see core::collectLmbenchProfile) so the
 * serial bench path and the job-graph path train on identical data.
 */
inline profile::EdgeProfile
collectLmbenchProfile(const kernel::KernelImage& k,
                      uint32_t base_iters = 120)
{
    return core::collectLmbenchProfile(k.module, k.info, base_iters);
}

/** Latencies of the LMBench suite on an image, keyed by test name. */
inline std::map<std::string, double>
lmbenchLatencies(const ir::Module& image, const kernel::KernelInfo& info)
{
    auto suite = workload::makeLmbenchSuite();
    std::map<std::string, double> out;
    for (auto& wl : suite) {
        out[wl->name()] =
            core::measureWorkload(image, info, *wl, measureConfig())
                .latency_us;
    }
    return out;
}

/** Overhead of `image` vs `baseline` per LMBench test + geomean. */
struct OverheadSet
{
    std::map<std::string, double> per_test; ///< Fractions.
    double geomean = 0;
};

inline OverheadSet
overheadsVs(const std::map<std::string, double>& baseline,
            const std::map<std::string, double>& measured)
{
    OverheadSet set;
    std::vector<double> all;
    for (const auto& [name, base] : baseline) {
        double o = overhead(measured.at(name), base);
        set.per_test[name] = o;
        all.push_back(o);
    }
    set.geomean = geomeanOverhead(all);
    return set;
}

/** Print a titled table with a short preamble. */
inline void
printTable(const std::string& title, const std::string& note,
           const Table& table)
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!note.empty())
        std::printf("%s\n", note.c_str());
    std::printf("%s", table.render().c_str());
    std::fflush(stdout);
}

/**
 * Shared command-line options of the converted table binaries:
 *
 *   --jobs N            worker threads for the job graph (default 1)
 *   --cache-dir DIR     on-disk artifact cache (shared across tables)
 *   --no-cache          disable memoization entirely
 *   --metrics           print the per-job metrics table (stderr)
 *   --metrics-json PATH write a one-line JSON metrics fragment
 *
 * Metrics never go to stdout, so table output stays byte-comparable
 * between serial and parallel runs.
 */
struct BenchArgs
{
    core::EngineOptions engine;
    bool show_metrics = false;
    std::string metrics_json;
};

inline BenchArgs
parseBenchArgs(int argc, char** argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--jobs")
            args.engine.jobs =
                static_cast<unsigned>(std::stoul(next()));
        else if (a == "--cache-dir")
            args.engine.cache_dir = next();
        else if (a == "--no-cache")
            args.engine.use_cache = false;
        else if (a == "--metrics")
            args.show_metrics = true;
        else if (a == "--metrics-json")
            args.metrics_json = next();
        else {
            std::fprintf(stderr,
                         "unknown option '%s' (supported: --jobs N, "
                         "--cache-dir DIR, --no-cache, --metrics, "
                         "--metrics-json PATH)\n",
                         a.c_str());
            std::exit(2);
        }
    }
    return args;
}

/** Report run metrics per the flags; call once after the table prints. */
inline void
finishBench(const BenchArgs& args, const std::string& table_id,
            const core::ExperimentResults& results)
{
    if (args.show_metrics) {
        std::fprintf(stderr, "\n--- %s: engine metrics ---\n%s",
                     table_id.c_str(),
                     core::engineMetricsTable(results).render().c_str());
    }
    if (!args.metrics_json.empty()) {
        std::ofstream out(args.metrics_json);
        out << "{\"table\":\"" << table_id << "\""
            << ",\"wall_s\":" << fixedStr(results.wall_ms / 1000.0, 3)
            << ",\"jobs\":" << args.engine.jobs
            << ",\"num_graph_jobs\":" << results.jobs.size()
            << ",\"cache_mem_hits\":" << results.cache.mem_hits
            << ",\"cache_disk_hits\":" << results.cache.disk_hits
            << ",\"cache_misses\":" << results.cache.misses
            << ",\"cache_puts\":" << results.cache.puts
            << ",\"cache_hit_rate\":"
            << fixedStr(results.cache.hitRate(), 4) << "}\n";
    }
}

} // namespace pibe::bench

#endif // PIBE_BENCH_BENCH_UTIL_H_
