/**
 * @file
 * Shared machinery for the benchmark harness.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it builds the synthetic kernel, collects the LMBench profile
 * (phase 1), derives the images its experiment needs (phase 2), runs
 * the measurements, and prints rows in the paper's layout next to the
 * paper's published numbers. Absolute values differ (the substrate is
 * a simulator, not an i7-8700K running Linux 5.1); the *shape* — who
 * wins, by roughly what factor, where crossovers fall — is the
 * reproduction target (see EXPERIMENTS.md).
 */
#ifndef PIBE_BENCH_BENCH_UTIL_H_
#define PIBE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "pibe/experiment.h"
#include "pibe/pipeline.h"
#include "support/stats.h"
#include "support/table.h"
#include "workload/workload.h"

namespace pibe::bench {

/** The evaluation kernel: full-size, fixed seed. */
inline kernel::KernelImage
buildEvalKernel()
{
    return kernel::buildKernel(kernel::KernelConfig{});
}

/** Standard measurement knobs used across all tables. */
inline core::MeasureConfig
measureConfig()
{
    core::MeasureConfig cfg;
    cfg.warmup_iters = 150;
    cfg.measure_iters = 400;
    return cfg;
}

/**
 * Phase 1: the LMBench profiling workload.
 *
 * LMBench runs each microbenchmark for a fixed wall time, so cheap
 * operations accumulate far more iterations than expensive ones; the
 * per-test multipliers below reproduce that skew (roughly inverse to
 * each test's latency), which is what gives the profile its
 * orders-of-magnitude weight spread across kernel paths.
 */
inline profile::EdgeProfile
collectLmbenchProfile(const kernel::KernelImage& k,
                      uint32_t base_iters = 120)
{
    static const std::map<std::string, double> kItersScale = {
        {"null", 16},       {"read", 8},       {"write", 8},
        {"open", 4},        {"stat", 6},       {"fstat", 10},
        {"af_unix", 4},     {"fork/exit", 1},  {"fork/exec", 0.6},
        {"fork/shell", 0.4}, {"pipe", 4},      {"select_file", 3},
        {"select_tcp", 2},  {"tcp_conn", 1.5}, {"udp", 4},
        {"tcp", 4},         {"mmap", 3},       {"page_fault", 8},
        {"sig_install", 12}, {"sig_dispatch", 8},
    };
    profile::EdgeProfile merged;
    for (auto& wl : workload::makeLmbenchSuite()) {
        std::vector<std::unique_ptr<workload::Workload>> one;
        one.push_back(workload::makeLmbenchTest(wl->name()));
        const uint32_t iters = std::max<uint32_t>(
            1, static_cast<uint32_t>(
                   base_iters * kItersScale.at(wl->name())));
        merged.merge(
            core::collectProfile(k.module, k.info, one, iters));
    }
    return merged;
}

/** Latencies of the LMBench suite on an image, keyed by test name. */
inline std::map<std::string, double>
lmbenchLatencies(const ir::Module& image, const kernel::KernelInfo& info)
{
    auto suite = workload::makeLmbenchSuite();
    std::map<std::string, double> out;
    for (auto& wl : suite) {
        out[wl->name()] =
            core::measureWorkload(image, info, *wl, measureConfig())
                .latency_us;
    }
    return out;
}

/** Overhead of `image` vs `baseline` per LMBench test + geomean. */
struct OverheadSet
{
    std::map<std::string, double> per_test; ///< Fractions.
    double geomean = 0;
};

inline OverheadSet
overheadsVs(const std::map<std::string, double>& baseline,
            const std::map<std::string, double>& measured)
{
    OverheadSet set;
    std::vector<double> all;
    for (const auto& [name, base] : baseline) {
        double o = overhead(measured.at(name), base);
        set.per_test[name] = o;
        all.push_back(o);
    }
    set.geomean = geomeanOverhead(all);
    return set;
}

/** Print a titled table with a short preamble. */
inline void
printTable(const std::string& title, const std::string& note,
           const Table& table)
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!note.empty())
        std::printf("%s\n", note.c_str());
    std::printf("%s", table.render().c_str());
    std::fflush(stdout);
}

} // namespace pibe::bench

#endif // PIBE_BENCH_BENCH_UTIL_H_
