/**
 * @file
 * Table 5: overhead with all transient defenses enabled (retpolines +
 * LVI-CFI + return retpolines), across PIBE optimization
 * configurations: none, ICP only, ICP+inlining at rising budgets, and
 * the "lax heuristics" configuration that disables the size rules
 * inside the hottest 99% of weight. The paper's headline: 149.1% ->
 * 10.6% geometric mean.
 */
#include "bench/bench_util.h"

namespace pibe {
namespace {

struct PaperRow
{
    double no_opt, icp, b99, b999, b999999, lax;
};

const std::map<std::string, PaperRow> kPaper = {
    {"null", {48.1, 52.7, 42.3, 42.4, 45.6, 43.6}},
    {"read", {166.9, 139.6, 49.1, 16.6, 22.6, 16.8}},
    {"write", {143.8, 121.6, 32.1, 16.9, 16.8, 16.3}},
    {"open", {253.2, 233.0, 11.8, 9.6, 8.3, -5.9}},
    {"stat", {239.3, 220.9, 41.8, 17.8, 20.9, -0.8}},
    {"fstat", {93.8, 75.0, 56.7, 24.0, 23.1, 23.8}},
    {"af_unix", {146.1, 131.8, 23.9, 18.5, 13.3, 14.1}},
    {"fork/exit", {93.8, 97.2, 21.7, 6.8, 4.9, 4.5}},
    {"fork/exec", {93.5, 91.6, 24.4, 8.8, 8.0, 6.8}},
    {"fork/shell", {75.3, 74.3, 19.2, 8.2, 3.3, 6.8}},
    {"pipe", {126.7, 106.3, 8.1, 7.5, 6.3, 4.6}},
    {"select_file", {307.6, 313.9, -8.6, -8.9, -3.5, -5.3}},
    {"select_tcp", {567.0, 359.9, -6.9, -12.1, -7.0, -6.1}},
    {"tcp_conn", {270.2, 232.6, 139.6, 116.5, 30.6, 43.6}},
    {"udp", {184.5, 156.3, 15.3, 14.2, 13.4, 15.4}},
    {"tcp", {200.8, 165.5, 16.3, 15.4, 15.7, 14.3}},
    {"mmap", {94.7, 83.3, 26.0, 11.5, 12.7, 10.3}},
    {"page_fault", {94.1, 92.8, -1.1, 0.5, 0.6, -0.4}},
    {"sig_install", {57.3, 52.4, 27.4, 33.8, 22.3, 15.2}},
    {"sig_dispatch", {100.7, 103.4, 91.1, 12.8, 8.1, 9.6}},
};

} // namespace
} // namespace pibe

int
main(int argc, char** argv)
{
    using namespace pibe;
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const harden::DefenseConfig all = harden::DefenseConfig::all();

    struct Column
    {
        const char* name;
        core::OptConfig opt;
    };
    const std::vector<Column> columns = {
        {"no-opt", core::OptConfig::none()},
        {"+icp(99.999%)", core::OptConfig::icpOnly(0.99999)},
        {"+inl 99%", core::OptConfig::icpAndInline(0.99)},
        {"+inl 99.9%", core::OptConfig::icpAndInline(0.999)},
        {"+inl 99.9999%", core::OptConfig::icpAndInline(0.999999)},
        {"lax heur.", core::OptConfig::icpAndInline(0.999999, true)},
    };

    core::ExperimentPlan plan;
    plan.measure = bench::measureConfig();
    plan.addImage("lto", core::OptConfig::none(),
                  harden::DefenseConfig::none());
    plan.measureLmbenchOn("lto");
    for (const auto& col : columns) {
        plan.addImage(col.name, col.opt, all);
        plan.measureLmbenchOn(col.name);
    }

    core::ExperimentResults results =
        core::runExperiments(plan, args.engine);
    auto base = results.latencies("lto");

    std::vector<bench::OverheadSet> sets;
    for (const auto& col : columns) {
        sets.push_back(
            bench::overheadsVs(base, results.latencies(col.name)));
    }

    Table t({"Test", "no-opt", "+icp", "99%", "99.9%", "99.9999%",
             "lax", "paper (no-opt -> lax)"});
    auto suite = workload::makeLmbenchSuite();
    for (const auto& wl : suite) {
        const std::string& name = wl->name();
        std::vector<std::string> row{name};
        for (const auto& set : sets)
            row.push_back(percent(set.per_test.at(name)));
        const PaperRow& p = kPaper.at(name);
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.0f%% -> %.1f%%", p.no_opt,
                      p.lax);
        row.push_back(buf);
        t.addRow(row);
    }
    t.addSeparator();
    std::vector<std::string> gm{"Geometric Mean"};
    for (const auto& set : sets)
        gm.push_back(percent(set.geomean));
    gm.push_back("149.1% -> 10.6%");
    t.addRow(gm);

    bench::printTable(
        "Table 5: overhead with all defenses, by optimization config",
        "All transient defenses (fenced retpolines + fenced returns) "
        "vs the LTO baseline; inlining budgets rise left to right.",
        t);
    bench::finishBench(args, "table5_all_defenses", results);
    return 0;
}
