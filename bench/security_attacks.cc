/**
 * @file
 * §8.6 security evaluation: mount each transient attack class against
 * the synthetic kernel under each defense configuration and count
 * transient gadget executions. The attacker continuously poisons the
 * predictors while an LMBench-like workload exercises the kernel; a
 * defense "holds" when the speculative-execution engine records zero
 * gadget hits.
 */
#include "bench/bench_util.h"

#include "uarch/simulator.h"
#include "uarch/speculation.h"

namespace pibe {
namespace {

struct AttackResult
{
    uint64_t fwd_hits = 0;
    uint64_t ret_hits = 0;
    double fwd_rate = 0;
    double ret_rate = 0;
};

AttackResult
runAttack(const ir::Module& image, const kernel::KernelInfo& info,
          uarch::AttackKind kind)
{
    uarch::Simulator sim(image);
    sim.setTimingEnabled(false);
    // The disclosure gadget: any kernel code the attacker wants run
    // transiently; use a driver helper deep in cold code.
    ir::FuncId gadget = image.findFunction("drv0_h0");
    uarch::TransientAttacker attacker(
        kind, sim.layout().funcBase(gadget));

    workload::KernelHandle handle(sim, info);
    // Boot and setup run before the attacker can execute (the reason
    // boot-section returns are exempt from hardening, §8.6).
    handle.boot();
    auto wl = workload::makeLmbenchTest("read");
    wl->setup(handle);
    sim.setObserver(&attacker);
    for (uint64_t i = 0; i < 300; ++i)
        wl->iteration(handle, i);
    AttackResult r;
    r.fwd_hits = attacker.forwardHits();
    r.ret_hits = attacker.returnHits();
    r.fwd_rate = attacker.forwardHitRate();
    r.ret_rate = attacker.returnHitRate();
    return r;
}

std::string
describe(const AttackResult& r)
{
    if (r.fwd_hits == 0 && r.ret_hits == 0)
        return "blocked";
    std::string s;
    if (r.fwd_hits > 0) {
        s += std::to_string(r.fwd_hits) + " fwd (" +
             percent(r.fwd_rate) + ")";
    }
    if (r.ret_hits > 0) {
        if (!s.empty())
            s += ", ";
        s += std::to_string(r.ret_hits) + " ret (" +
             percent(r.ret_rate) + ")";
    }
    return s;
}

} // namespace
} // namespace pibe

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto profile = bench::collectLmbenchProfile(k, 40);

    struct Config
    {
        const char* name;
        harden::DefenseConfig defense;
    };
    const std::vector<Config> configs = {
        {"vanilla (no defenses)", harden::DefenseConfig::none()},
        {"retpolines", harden::DefenseConfig::retpolinesOnly()},
        {"return retpolines",
         harden::DefenseConfig::retRetpolinesOnly()},
        {"LVI-CFI", harden::DefenseConfig::lviOnly()},
        {"all defenses", harden::DefenseConfig::all()},
        {"all defenses + PIBE opt", harden::DefenseConfig::all()},
    };

    Table t({"kernel configuration", "spectre-v2", "ret2spec", "lvi",
             "verdict"});
    for (size_t c = 0; c < configs.size(); ++c) {
        const bool optimized = (c == configs.size() - 1);
        ir::Module img = core::buildImage(
            k.module, profile,
            optimized ? core::OptConfig::icpAndInline(0.999999, true)
                      : core::OptConfig::none(),
            configs[c].defense);
        AttackResult v2 =
            runAttack(img, k.info, uarch::AttackKind::kSpectreV2);
        AttackResult rs =
            runAttack(img, k.info, uarch::AttackKind::kRet2spec);
        AttackResult lvi =
            runAttack(img, k.info, uarch::AttackKind::kLvi);
        const uint64_t total = v2.fwd_hits + v2.ret_hits + rs.fwd_hits +
                               rs.ret_hits + lvi.fwd_hits +
                               lvi.ret_hits;
        std::string verdict;
        if (total == 0) {
            verdict = "SECURE";
        } else if (configs[c].defense.retpoline &&
                   configs[c].defense.lvi_cfi &&
                   configs[c].defense.ret_retpoline) {
            // All defenses on: remaining hits come only from the
            // hand-written assembly dispatchers (Table 11's residual
            // surface the paper also reports).
            verdict = "residual asm surface";
        } else {
            verdict = "VULNERABLE";
        }
        t.addRow({configs[c].name, describe(v2), describe(rs),
                  describe(lvi), verdict});
    }
    bench::printTable(
        "Security evaluation: transient gadget hits per attack (§8.6)",
        "Hits = transient executions of the disclosure gadget; rates "
        "are per forward-edge event (fwd) or return event (ret) while "
        "the attacker continuously poisons the predictors during a "
        "read() workload. With all defenses, any residual hits come "
        "from the assembly irq/trap dispatchers that cannot be "
        "rewritten (the paper's 5 vulnerable ijumps + 41 asm icalls); "
        "PIBE's constant folding happens to elide the hot asm "
        "dispatch on this path, emptying even that channel.",
        t);
    return 0;
}
