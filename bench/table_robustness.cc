/**
 * @file
 * §8.4: performance robustness to workload profiles. Three kernels
 * with all defenses: optimized with the matching LMBench profile,
 * optimized with the (monotonic) Apache profile, and optimized by the
 * default LLVM-like inliner with the matching profile. All measured on
 * LMBench. The paper: 10.6% (matched) vs 22.5% (Apache-trained) vs
 * 100.2% (default inliner) vs 149.1% (no optimization).
 *
 * Also reports the §8.4 workload-overlap statistic: the share of
 * promotion/inlining candidate weight the two workloads have in
 * common at a 99% budget.
 */
#include "bench/bench_util.h"

namespace pibe {
namespace {

/** Weight of the hottest sites covering `budget` of a profile. */
std::map<ir::SiteId, uint64_t>
hotSites(const std::map<ir::SiteId, uint64_t>& weights, double budget)
{
    std::vector<std::pair<uint64_t, ir::SiteId>> sorted;
    uint64_t total = 0;
    for (const auto& [site, w] : weights) {
        sorted.push_back({w, site});
        total += w;
    }
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    std::map<ir::SiteId, uint64_t> hot;
    double cum = 0;
    for (const auto& [w, site] : sorted) {
        if (cum >= budget * static_cast<double>(total))
            break;
        hot[site] = w;
        cum += static_cast<double>(w);
    }
    return hot;
}

std::map<ir::SiteId, uint64_t>
directWeights(const profile::EdgeProfile& p)
{
    return {p.directSites().begin(), p.directSites().end()};
}

std::map<ir::SiteId, uint64_t>
indirectWeights(const profile::EdgeProfile& p)
{
    std::map<ir::SiteId, uint64_t> out;
    for (const auto& [site, targets] : p.indirectSites()) {
        uint64_t sum = 0;
        for (const auto& [t, c] : targets)
            sum += c;
        out[site] = sum;
    }
    return out;
}

/** Shared candidate weight fraction between two profiles at 99%. */
double
sharedWeight(const std::map<ir::SiteId, uint64_t>& a,
             const std::map<ir::SiteId, uint64_t>& b)
{
    auto hot_a = hotSites(a, 0.99);
    auto hot_b = hotSites(b, 0.99);
    uint64_t shared = 0, total = 0;
    for (const auto& [site, w] : hot_a) {
        total += w;
        if (hot_b.count(site))
            shared += w;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(shared) /
                            static_cast<double>(total);
}

} // namespace
} // namespace pibe

int
main()
{
    using namespace pibe;
    kernel::KernelImage k = bench::buildEvalKernel();
    auto lm_profile = bench::collectLmbenchProfile(k);

    // The Apache profiling workload (1M-request analog: many repeats
    // of the same request loop).
    std::vector<std::unique_ptr<workload::Workload>> apache;
    apache.push_back(workload::makeApacheWorkload());
    auto ap_profile =
        core::collectProfile(k.module, k.info, apache, 1500);

    std::printf("\nWorkload overlap at 99%% budget (paper: 58%% icp / "
                "67%% inlining):\n");
    std::printf("  shared inlining candidate weight: %s\n",
                percent(sharedWeight(directWeights(ap_profile),
                                     directWeights(lm_profile)))
                    .c_str());
    std::printf("  shared icp candidate weight:      %s\n",
                percent(sharedWeight(indirectWeights(ap_profile),
                                     indirectWeights(lm_profile)))
                    .c_str());

    ir::Module lto =
        core::buildImage(k.module, lm_profile, core::OptConfig::none(),
                         harden::DefenseConfig::none());
    auto base = bench::lmbenchLatencies(lto, k.info);

    struct Row
    {
        const char* name;
        const profile::EdgeProfile* profile;
        core::OptConfig opt;
        const char* paper;
    };
    core::OptConfig default_inliner = core::OptConfig::icpAndInline(0.999999);
    default_inliner.inliner = core::InlinerKind::kDefaultLlvm;
    const std::vector<Row> rows = {
        {"no optimization", &lm_profile, core::OptConfig::none(),
         "149.1%"},
        {"PIBE, LMBench profile (matched)", &lm_profile,
         core::OptConfig::icpAndInline(0.999999, true), "10.6%"},
        {"PIBE, Apache profile (mismatched)", &ap_profile,
         core::OptConfig::icpAndInline(0.999999, true), "22.5%"},
        {"default LLVM inliner, LMBench profile", &lm_profile,
         default_inliner, "100.2%"},
    };

    Table t({"configuration", "LMBench geomean overhead", "paper"});
    for (const auto& row : rows) {
        ir::Module img = core::buildImage(k.module, *row.profile,
                                          row.opt,
                                          harden::DefenseConfig::all());
        auto ovr = bench::overheadsVs(
            base, bench::lmbenchLatencies(img, k.info));
        t.addRow({row.name, percent(ovr.geomean), row.paper});
    }
    bench::printTable(
        "Robustness to workload profiles (§8.4)",
        "All defenses enabled; kernels optimized with matching vs "
        "mismatched profiles, measured on LMBench.",
        t);
    return 0;
}
