/**
 * @file
 * Attack walkthrough: mounts Spectre V2, Ret2spec, and LVI against a
 * small victim service, showing how each defense shuts its channel —
 * and why the combination must be the *fenced* retpoline (§6.3):
 * retpolines alone leak under LVI, LVI-CFI alone re-opens the BTB.
 *
 * Build & run:  ./build/examples/attack_demo
 */
#include <cstdio>

#include "harden/harden.h"
#include "ir/builder.h"
#include "pibe/pipeline.h"
#include "uarch/simulator.h"
#include "uarch/speculation.h"

using namespace pibe;

namespace {

struct Victim
{
    ir::Module module;
    ir::FuncId service;
    ir::FuncId gadget;
};

/** A service loop: per request, one indirect handler call + return. */
Victim
buildVictim()
{
    Victim v;
    ir::Module& m = v.module;
    ir::FuncId handler = m.addFunction("request_handler", 1);
    {
        ir::FunctionBuilder b(m, handler);
        b.ret(b.binImm(ir::BinKind::kXor, b.param(0), 0x5a));
    }
    v.gadget = m.addFunction("secret_disclosure_gadget", 1);
    {
        ir::FunctionBuilder b(m, v.gadget);
        b.sink(b.param(0)); // "transmits" through a side channel
        b.ret(b.constI(0));
    }
    m.addGlobal("handlers", {ir::funcAddrValue(handler)});
    v.service = m.addFunction("service", 1);
    ir::FunctionBuilder b(m, v.service);
    ir::Reg i = b.newReg();
    b.setRegConst(i, 0);
    ir::Reg one = b.constI(1);
    ir::Reg zero = b.constI(0);
    ir::BlockId head = b.newBlock();
    ir::BlockId body = b.newBlock();
    ir::BlockId done = b.newBlock();
    b.br(head);
    b.setBlock(head);
    ir::Reg cont = b.bin(ir::BinKind::kLt, i, b.param(0));
    b.condBr(cont, body, done);
    b.setBlock(body);
    ir::Reg t = b.load(0, zero);
    ir::Reg r = b.icall(t, {i});
    b.sink(r);
    b.setRegBin(i, ir::BinKind::kAdd, i, one);
    b.br(head);
    b.setBlock(done);
    b.ret(i);
    return v;
}

void
tryAttacks(const char* label, const harden::DefenseConfig& defense)
{
    std::printf("%-38s", label);
    for (uarch::AttackKind kind :
         {uarch::AttackKind::kSpectreV2, uarch::AttackKind::kRet2spec,
          uarch::AttackKind::kLvi}) {
        Victim v = buildVictim();
        harden::applyDefenses(v.module, defense);
        uarch::Simulator sim(v.module);
        uarch::TransientAttacker attacker(
            kind, sim.layout().funcBase(v.gadget));
        sim.setObserver(&attacker);
        sim.run(v.service, {500});
        std::printf("  %-10s %-8s", uarch::attackKindName(kind),
                    attacker.gadgetHits() == 0 ? "blocked" : "LEAKED");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Transient control-flow hijacking against a victim "
                "service (500 requests each):\n\n");
    harden::DefenseConfig retp_lvi;
    retp_lvi.retpoline = true;
    retp_lvi.lvi_cfi = true;

    tryAttacks("no defenses", harden::DefenseConfig::none());
    tryAttacks("retpolines only",
               harden::DefenseConfig::retpolinesOnly());
    tryAttacks("LVI-CFI only", harden::DefenseConfig::lviOnly());
    tryAttacks("return retpolines only",
               harden::DefenseConfig::retRetpolinesOnly());
    tryAttacks("retpolines + LVI (fenced retpoline)", retp_lvi);
    tryAttacks("all defenses", harden::DefenseConfig::all());

    std::printf(
        "\nReading the grid:\n"
        " - retpolines pin BTB speculation but leave the target load\n"
        "   injectable (LVI leaks) and returns poisonable (Ret2spec\n"
        "   leaks);\n"
        " - LVI-CFI fences the loads but its thunk ends in a BTB-\n"
        "   predicted jump (Spectre V2 leaks);\n"
        " - only the combined fenced retpoline plus fenced returns\n"
        "   (\"all defenses\") closes every channel -- at 149%% cost\n"
        "   without PIBE's branch elimination (see Table 5).\n");
    return 0;
}
