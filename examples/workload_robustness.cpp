/**
 * @file
 * Vendor scenario (§8.4): a binary distributor cannot profile every
 * end user's workload. This example optimizes the kernel with an
 * Apache profile and shows the image still helps an LMBench-shaped
 * user — profile-guided branch elimination degrades gracefully under
 * workload mismatch because hot kernel paths overlap across workloads.
 *
 * Build & run:  ./build/examples/workload_robustness
 */
#include <cstdio>

#include "bench/bench_util.h"
#include "profile/serialize.h"

using namespace pibe;

int
main()
{
    kernel::KernelImage k = bench::buildEvalKernel();

    std::printf("collecting the vendor's profiling workload "
                "(ApacheBench analog)...\n");
    std::vector<std::unique_ptr<workload::Workload>> apache;
    apache.push_back(workload::makeApacheWorkload());
    auto vendor_profile =
        core::collectProfile(k.module, k.info, apache, 1200);

    // Vendors ship profiles as artifacts; round-trip through the text
    // format exactly as a build farm would.
    std::string artifact =
        profile::serializeProfile(k.module, vendor_profile);
    std::printf("  serialized profile: %zu bytes\n", artifact.size());
    auto lifted = profile::liftProfile(k.module, artifact);

    std::printf("building production images...\n");
    ir::Module lto =
        core::buildImage(k.module, lifted, core::OptConfig::none(),
                         harden::DefenseConfig::none());
    ir::Module unopt =
        core::buildImage(k.module, lifted, core::OptConfig::none(),
                         harden::DefenseConfig::all());
    ir::Module vendor_img = core::buildImage(
        k.module, lifted, core::OptConfig::icpAndInline(0.999999, true),
        harden::DefenseConfig::all());

    // The end user runs something LMBench-shaped, not Apache.
    std::printf("measuring the end user's workload (LMBench)...\n\n");
    auto base = bench::lmbenchLatencies(lto, k.info);
    auto o_unopt =
        bench::overheadsVs(base, bench::lmbenchLatencies(unopt, k.info));
    auto o_vendor = bench::overheadsVs(
        base, bench::lmbenchLatencies(vendor_img, k.info));

    std::printf("all defenses, no optimization:      %s overhead\n",
                percent(o_unopt.geomean).c_str());
    std::printf("all defenses, Apache-trained PIBE:  %s overhead\n",
                percent(o_vendor.geomean).c_str());
    std::printf("\nThe mismatched profile recovers most of the "
                "defense overhead\n(paper: 149.1%% -> 22.5%% with the "
                "mismatched profile, 10.6%% matched).\n");
    return 0;
}
