/**
 * @file
 * Quickstart: the whole PIBE pipeline on a 30-line program.
 *
 *   1. Build a small PIR module with an indirect call and some helpers.
 *   2. Profile it (phase 1).
 *   3. Derive a production image: promote + inline + harden (phase 2).
 *   4. Compare cycles and inspect the transformed code.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "harden/harden.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "pibe/pipeline.h"
#include "uarch/simulator.h"

using namespace pibe;

namespace {

/** handler table: two small operations selected by a runtime value. */
struct Demo
{
    ir::Module module;
    ir::FuncId entry;
};

Demo
buildDemo()
{
    Demo d;
    ir::Module& m = d.module;

    ir::FuncId inc = m.addFunction("op_increment", 1);
    {
        ir::FunctionBuilder b(m, inc);
        b.ret(b.binImm(ir::BinKind::kAdd, b.param(0), 1));
    }
    ir::FuncId dbl = m.addFunction("op_double", 1);
    {
        ir::FunctionBuilder b(m, dbl);
        b.ret(b.binImm(ir::BinKind::kMul, b.param(0), 2));
    }
    ir::GlobalId ops = m.addGlobal(
        "ops", {ir::funcAddrValue(inc), ir::funcAddrValue(dbl)});

    // process(n): loop n times dispatching through the ops table;
    // op_increment dominates (the "hot target" PIBE will promote).
    d.entry = m.addFunction("process", 1);
    ir::FunctionBuilder b(m, d.entry);
    ir::Reg acc = b.newReg();
    b.setRegConst(acc, 0);
    ir::Reg i = b.newReg();
    b.setRegConst(i, 0);
    ir::Reg one = b.constI(1);
    ir::BlockId head = b.newBlock();
    ir::BlockId body = b.newBlock();
    ir::BlockId done = b.newBlock();
    b.br(head);
    b.setBlock(head);
    ir::Reg cont = b.bin(ir::BinKind::kLt, i, b.param(0));
    b.condBr(cont, body, done);
    b.setBlock(body);
    // 7 of 8 iterations hit op_increment; 1 of 8 hits op_double.
    ir::Reg phase = b.binImm(ir::BinKind::kAnd, i, 7);
    ir::Reg is_dbl = b.binImm(ir::BinKind::kEq, phase, 7);
    ir::Reg target = b.load(ops, is_dbl);
    ir::Reg r = b.icall(target, {acc});
    b.setReg(acc, r);
    b.setRegBin(i, ir::BinKind::kAdd, i, one);
    b.br(head);
    b.setBlock(done);
    b.ret(acc);
    return d;
}

uint64_t
measureCycles(const ir::Module& m, ir::FuncId entry)
{
    uarch::Simulator sim(m);
    sim.run(entry, {5000}); // warm predictors and i-cache
    sim.clearStats();
    sim.run(entry, {5000});
    return sim.stats().cycles;
}

} // namespace

int
main()
{
    Demo demo = buildDemo();

    // --- Phase 1: profile ---------------------------------------------
    profile::EdgeProfile profile;
    {
        uarch::Simulator sim(demo.module);
        sim.setTimingEnabled(false);
        sim.setProfiler(&profile);
        sim.run(demo.entry, {5000});
    }
    std::printf("profiled %zu indirect site(s), total weight %llu\n",
                profile.numIndirectSites(),
                static_cast<unsigned long long>(
                    profile.totalIndirectWeight()));

    // --- Phase 2: three production images ------------------------------
    const harden::DefenseConfig all = harden::DefenseConfig::all();

    ir::Module undefended = core::buildImage(
        demo.module, profile, core::OptConfig::none(),
        harden::DefenseConfig::none());
    ir::Module hardened = core::buildImage(
        demo.module, profile, core::OptConfig::none(), all);
    core::BuildReport report;
    ir::Module pibe_image = core::buildImage(
        demo.module, profile, core::OptConfig::icpAndInline(0.999), all,
        &report);

    // --- Results --------------------------------------------------------
    const uint64_t base = measureCycles(undefended, demo.entry);
    const uint64_t slow = measureCycles(hardened, demo.entry);
    const uint64_t fast = measureCycles(pibe_image, demo.entry);
    std::printf("\ncycles for 5000 dispatches:\n");
    std::printf("  undefended:                 %8llu\n",
                static_cast<unsigned long long>(base));
    std::printf("  all defenses:               %8llu  (%+.1f%%)\n",
                static_cast<unsigned long long>(slow),
                100.0 * (static_cast<double>(slow) / base - 1.0));
    std::printf("  all defenses + PIBE:        %8llu  (%+.1f%%)\n",
                static_cast<unsigned long long>(fast),
                100.0 * (static_cast<double>(fast) / base - 1.0));
    std::printf("\nPIBE promoted %u target(s) and inlined %u site(s); "
                "%u indirect call(s) remain hardened.\n",
                report.icp.promoted_targets,
                report.inlining.inlined_sites,
                report.coverage.protected_icalls);

    std::printf("\ntransformed entry function:\n%s",
                ir::printFunction(pibe_image,
                                  pibe_image.func(demo.entry))
                    .c_str());
    return 0;
}
