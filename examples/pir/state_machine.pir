func @step(params=1, regs=3, frame=0) {
bb0:
    r1 = const 1
    r2 = add r0, r1
    ret r2 !site 0
}
func @main(params=1, regs=8, frame=1) {
bb0:
    r1 = const 0
    frame[0] = r1
    br bb1
bb1:
    switch r0 default bb4, 0->bb2, 1->bb3
bb2:
    r2 = frame[0]
    r3 = call @step(r2) !site 1
    frame[0] = r3
    r4 = const 1
    r0 = add r0, r4
    br bb1
bb3:
    r5 = frame[0]
    r6 = call @step(r5) !site 2
    frame[0] = r6
    r7 = const 1
    r0 = add r0, r7
    br bb1
bb4:
    r2 = frame[0]
    ret r2 !site 3
}
