global @ops[4] { 0: 4294967296, 1: 4294967297, 2: 4294967298, 3: 4294967299 }
func @op_add(params=2, regs=3, frame=0) {
bb0:
    r2 = add r0, r1
    ret r2 !site 0
}
func @op_sub(params=2, regs=3, frame=0) {
bb0:
    r2 = sub r0, r1
    ret r2 !site 1
}
func @op_mul(params=2, regs=3, frame=0) {
bb0:
    r2 = mul r0, r1
    ret r2 !site 2
}
func @op_xor(params=2, regs=3, frame=0) {
bb0:
    r2 = xor r0, r1
    ret r2 !site 3
}
func @main(params=3, regs=7, frame=0) {
bb0:
    r3 = const 3
    r4 = and r0, r3
    r5 = load @ops[r4 + 0]
    r6 = icall r5(r1, r2) !site 4
    ret r6 !site 5
}
