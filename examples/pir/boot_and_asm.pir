func @probe(params=1, regs=3, frame=0) boot {
bb0:
    r1 = const 7
    r2 = mul r0, r1
    ret r2 !site 0
}
func @irq_dispatch(params=1, regs=5, frame=0) {
bb0:
    r1 = const 1
    r2 = and r0, r1
    switch r2 default bb1, 0->bb1, 1->bb2 !asm
bb1:
    r3 = const 10
    sink r3
    ret r3 !site 1
bb2:
    r4 = const 20
    sink r4
    ret r4 !site 2
}
func @kernel_init(params=0, regs=3, frame=0) boot {
bb0:
    r0 = const 3
    r1 = call @probe(r0) !site 3
    r2 = call @irq_dispatch(r1) !site 4
    ret r2 !site 5
}
