/**
 * @file
 * The production scenario from the paper: take the (synthetic) Linux
 * kernel, profile it with a representative workload, and ship an image
 * with comprehensive transient-execution defenses at practical
 * overhead. Prints the before/after story in one page.
 *
 * Build & run:  ./build/examples/kernel_hardening
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace pibe;

int
main()
{
    std::printf("building the synthetic kernel...\n");
    kernel::KernelImage k = bench::buildEvalKernel();
    std::printf("  %zu functions, %llu bytes of text\n",
                k.module.numFunctions(),
                static_cast<unsigned long long>(
                    analysis::CodeLayout(k.module).imageSize()));

    std::printf("phase 1: profiling with the LMBench workload...\n");
    auto profile = bench::collectLmbenchProfile(k);
    std::printf("  %zu direct sites, %zu indirect sites, "
                "%llu total edge executions\n",
                profile.numDirectSites(), profile.numIndirectSites(),
                static_cast<unsigned long long>(
                    profile.totalDirectWeight() +
                    profile.totalIndirectWeight()));

    std::printf("phase 2: building production images...\n");
    ir::Module lto =
        core::buildImage(k.module, profile, core::OptConfig::none(),
                         harden::DefenseConfig::none());
    ir::Module unopt =
        core::buildImage(k.module, profile, core::OptConfig::none(),
                         harden::DefenseConfig::all());
    core::BuildReport report;
    ir::Module pibe_img = core::buildImage(
        k.module, profile, core::OptConfig::icpAndInline(0.999999, true),
        harden::DefenseConfig::all(), &report);

    std::printf("  icp: promoted %u targets at %u sites (%.1f%% of "
                "indirect weight)\n",
                report.icp.promoted_targets, report.icp.promoted_sites,
                100.0 * static_cast<double>(report.icp.promoted_weight) /
                    static_cast<double>(report.icp.total_weight));
    std::printf("  inlining: elided %u return sites (%.1f%% of call "
                "weight)\n",
                report.inlining.inlined_sites,
                100.0 *
                    static_cast<double>(report.inlining.inlined_weight) /
                    static_cast<double>(report.inlining.total_weight));
    std::printf("  coverage: %u protected icalls, %u asm icalls and %u "
                "asm ijumps remain, %u protected returns\n",
                report.coverage.protected_icalls,
                report.coverage.vulnerable_icalls,
                report.coverage.vulnerable_ijumps,
                report.coverage.protected_rets);
    std::printf("  image: %llu -> %llu bytes (+%.1f%%)\n",
                static_cast<unsigned long long>(
                    report.baseline_image_size),
                static_cast<unsigned long long>(report.image_size),
                100.0 * (static_cast<double>(report.image_size) /
                             static_cast<double>(
                                 report.baseline_image_size) -
                         1.0));

    std::printf("measuring LMBench on all three kernels...\n\n");
    auto base = bench::lmbenchLatencies(lto, k.info);
    auto o_unopt =
        bench::overheadsVs(base, bench::lmbenchLatencies(unopt, k.info));
    auto o_pibe = bench::overheadsVs(
        base, bench::lmbenchLatencies(pibe_img, k.info));

    Table t({"Test", "baseline (us)", "all defenses", "PIBE"});
    for (const auto& [name, lat] : base) {
        t.addRow({name, fixedStr(lat, 3),
                  percent(o_unopt.per_test.at(name)),
                  percent(o_pibe.per_test.at(name))});
    }
    t.addSeparator();
    t.addRow({"Geometric Mean", "-", percent(o_unopt.geomean),
              percent(o_pibe.geomean)});
    std::printf("%s", t.render().c_str());
    std::printf("\ncomprehensive transient protection: %s -> %s\n",
                percent(o_unopt.geomean).c_str(),
                percent(o_pibe.geomean).c_str());
    return 0;
}
